//! The network packet model.
//!
//! The paper's threat model (§3.2 remark 1) assumes packet contents are
//! perfectly encrypted — the adversary "cannot distinguish between payload
//! packets and dummy packets". We carry a [`PacketKind`] on every packet
//! for *instrumentation* (overhead accounting, QoS measurement, test
//! assertions), but the adversary-facing tap API exposes only timestamps;
//! nothing in `linkpad-adversary` can observe a kind. Remark 3 fixes the
//! packet size to a constant, which scenario builders honour for the
//! protected flow (cross traffic uses realistic size mixes).

use crate::time::SimTime;

/// Identifies a traffic flow (e.g. the padded flow vs. cross traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl FlowId {
    /// Conventional id for the protected (padded) flow in scenarios.
    pub const PADDED: FlowId = FlowId(0);
    /// Conventional id for cross traffic in scenarios.
    pub const CROSS: FlowId = FlowId(1);
}

/// What a packet carries. Invisible to the adversary (encryption).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Real user payload.
    Payload,
    /// Padding injected by a gateway to fill a timer slot.
    Dummy,
    /// Background traffic from unrelated hosts.
    Cross,
}

/// A simulated packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Globally unique id (assigned by the engine).
    pub id: u64,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Payload/dummy/cross marker — instrumentation only.
    pub kind: PacketKind,
    /// On-the-wire size in bytes (headers included).
    pub size_bytes: u32,
    /// When the packet was created at its origin.
    pub created: SimTime,
    /// When the *payload inside it* entered the sending gateway's queue
    /// (equal to `created` for non-gateway traffic). Used for end-to-end
    /// QoS accounting across the padding system.
    pub enqueued: SimTime,
}

impl Packet {
    /// Construct a packet; `enqueued` defaults to `created`.
    pub fn new(id: u64, flow: FlowId, kind: PacketKind, size_bytes: u32, created: SimTime) -> Self {
        Packet {
            id,
            flow,
            kind,
            size_bytes,
            created,
            enqueued: created,
        }
    }

    /// Serialization time of this packet on a link of `bits_per_sec`.
    pub fn tx_time_secs(&self, bits_per_sec: f64) -> f64 {
        debug_assert!(bits_per_sec > 0.0);
        (self.size_bytes as f64 * 8.0) / bits_per_sec
    }

    /// Whether this packet belongs to the padded (protected) flow.
    pub fn is_padded_flow(&self) -> bool {
        self.flow == FlowId::PADDED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_matches_hand_calculation() {
        let p = Packet::new(1, FlowId::PADDED, PacketKind::Dummy, 500, SimTime::ZERO);
        // 500 B = 4000 bits on 100 Mb/s → 40 µs
        assert!((p.tx_time_secs(100e6) - 40e-6).abs() < 1e-15);
    }

    #[test]
    fn flow_helpers() {
        let p = Packet::new(2, FlowId::PADDED, PacketKind::Payload, 500, SimTime::ZERO);
        assert!(p.is_padded_flow());
        let c = Packet::new(3, FlowId::CROSS, PacketKind::Cross, 1500, SimTime::ZERO);
        assert!(!c.is_padded_flow());
    }

    #[test]
    fn enqueued_defaults_to_created() {
        let t = SimTime::from_secs_f64(1.5);
        let p = Packet::new(4, FlowId::PADDED, PacketKind::Payload, 500, t);
        assert_eq!(p.enqueued, t);
    }
}
