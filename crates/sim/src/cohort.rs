//! Flow cohorts: K CIT-padded flows superposed in one node.
//!
//! The aggregate scenario family models every padded flow as its own
//! sender/receiver gateway pair — faithful, but ~10 boxed nodes and one
//! armed timer per flow, which walls the family at ~10⁴ flows. The key
//! structural fact of CIT padding unlocks the next two orders of
//! magnitude: a CIT gateway's wire output is a **deterministic comb**.
//! Flow k with start phase φₖ emits exactly one fixed-size packet at
//! every nominal instant `φₖ + j·τ` (j ≥ 1), each transmission shifted
//! by an independent per-tick disturbance δ — and nothing else about the
//! flow (payload content, queue state) is visible on the wire. The
//! superposition of K such flows is therefore itself a deterministic
//! comb: the multiset union `⋃ₖ {φₖ + j·τ}`, one iid δ per emission.
//!
//! [`FlowCohort`] simulates that union directly: one node holds the
//! sorted per-cohort **phase vector** (collapsed to unique phases with
//! multiplicities) and keeps exactly **one pending timer event** for the
//! next emission instant, re-arming along the phase cycle. A cohort of
//! K = 1024 flows costs the event store the same as one gateway; a
//! million flows fit in ~10³ nodes. See `DESIGN.md` ("cohort
//! superposition") for the exactness argument and the places the
//! identity would break — VIT schedules (per-flow clock drift), the
//! `Relative` timer discipline (δ feeds back into the period), and
//! payload overload (queue dynamics coupling ticks) — all of which this
//! node deliberately refuses to model.
//!
//! The per-tick disturbance is reproduced by [`CohortJitter`], mirroring
//! `GatewayJitterModel` (that type lives upstream in `linkpad-core`,
//! which depends on this crate): a zero-mean baseline normal plus an
//! interrupt-blocking exponential triggered with the per-tick payload
//! arrival probability `p = rate·τ`, behind the same 6σ causality
//! offset. With jitter disabled the cohort makes **zero RNG draws** and
//! its emission times are bit-exact nominal instants — the regime the
//! exactness tests compare against real `SenderGateway`s.
//!
//! # Stochastic cohorts
//!
//! The comb above is exact only for deterministic schedules (CIT,
//! constant-rate). Stochastic defences — VIT interval laws, adaptive
//! padding — give each member its own random clock, so the cohort
//! carries **per-member next-fire state** instead: a small in-node
//! binary heap of `(next nominal fire time, member index)` pairs, one
//! entry per member, driven by a [`MemberSchedule`] (an interval *law*
//! shared iid across members, or per-member machines like adaptive
//! padding). The engine still sees **one pending timer event per
//! cohort** — the heap minimum — so a stochastic cohort costs the event
//! store the same as a deterministic one and `ShardedAggregate` scales
//! every defence to 10⁶ flows. Determinism: the heap pops in the total
//! order `(time, member)`, and all draws (jitter δ, packet size, next
//! interval — in that documented per-emission order) come off the
//! cohort node's single RNG stream, so runs replay bit-identically
//! under `reset(seed)`. What the heap does *not* preserve is the
//! gateway fan-in's *stream interleaving*: K real gateways draw from K
//! independent RNG streams, the cohort from one, so stochastic-regime
//! equivalence is distributional (window count/byte moments), not
//! bit-exact — see `defense_equivalence.rs` and DESIGN.md.

use crate::engine::Context;
use crate::node::{Node, NodeId};
use crate::packet::{FlowId, PacketKind};
use crate::time::{SimDuration, SimTime};
use linkpad_stats::dist::{ContinuousDist, Exponential};
use linkpad_stats::normal::Normal;
use linkpad_stats::rng::Xoshiro256StarStar;
use rand_core::RngCore;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Conventional wire flow id for cohort-generated traffic. Cohort
/// members are indistinguishable on the wire (constant size, encrypted),
/// so they share one id; scenario demuxes absorb it instead of fanning
/// out per-flow branches.
pub const COHORT_FLOW: FlowId = FlowId(u32::MAX);

const TICK: u64 = 0;

/// Per-member interval source of a stochastic cohort: `member` is the
/// within-cohort index (position in the sorted phase vector). Called
/// once per emission in the deterministic heap pop order, plus once per
/// member (in member order) at start to seed the heap.
pub trait MemberSchedule: std::fmt::Debug {
    /// Draw member `member`'s next inter-emission interval, seconds.
    /// Must be positive (the cohort floors to 1 ns defensively).
    fn next_interval_secs(&mut self, member: u32, rng: &mut dyn RngCore) -> f64;

    /// Return any machine state to its initial value (the next
    /// `on_start` re-seeds the heap from a fresh RNG stream).
    fn reset(&mut self);
}

/// A [`MemberSchedule`] where every member draws iid intervals from one
/// shared law — the stochastic-cohort form of the VIT families (each
/// member's clock is an independent renewal process of the same law).
#[derive(Debug)]
pub struct LawSchedule {
    law: Box<dyn ContinuousDist>,
}

impl LawSchedule {
    /// Wrap an interval law (mean must be positive; the caller
    /// validates, as `PaddingSchedule` constructors already do).
    pub fn new(law: Box<dyn ContinuousDist>) -> Self {
        Self { law }
    }
}

impl MemberSchedule for LawSchedule {
    fn next_interval_secs(&mut self, _member: u32, rng: &mut dyn RngCore) -> f64 {
        self.law.sample(rng).max(1e-6)
    }

    fn reset(&mut self) {}
}

/// Per-emission disturbance model of a cohort member, mirroring the
/// sender gateway's δ_gw: baseline OS jitter plus payload-arrival
/// interrupt blocking (see `linkpad-core`'s `GatewayJitterModel`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CohortJitter {
    /// Baseline zero-mean normal jitter σ_base, seconds.
    pub base_sigma: f64,
    /// Mean of the interrupt-blocking delay per payload arrival, seconds.
    pub blocking_mean: f64,
    /// Probability that a payload packet arrived during the tick period
    /// (`p = payload_rate · τ`, clamped to [0, 1] — the Bernoulli
    /// arrival regime of all the paper's experiments).
    pub arrival_prob: f64,
}

/// Materialized samplers for [`CohortJitter`] (built once per cohort so
/// the per-emission path allocates nothing).
#[derive(Debug)]
struct JitterSamplers {
    base: Option<Normal>,
    blocking: Option<Exponential>,
    arrival_prob: f64,
    /// Constant causality offset (6σ_base), as in the gateway.
    pipeline_offset: f64,
}

impl JitterSamplers {
    fn new(j: CohortJitter) -> Self {
        assert!(
            j.base_sigma.is_finite() && j.base_sigma >= 0.0,
            "cohort jitter base_sigma must be finite and non-negative"
        );
        assert!(
            j.blocking_mean.is_finite() && j.blocking_mean >= 0.0,
            "cohort jitter blocking_mean must be finite and non-negative"
        );
        assert!(
            j.arrival_prob.is_finite() && (0.0..=1.0).contains(&j.arrival_prob),
            "cohort jitter arrival_prob must be in [0, 1]"
        );
        Self {
            base: (j.base_sigma > 0.0)
                .then(|| Normal::new(0.0, j.base_sigma).expect("validated sigma")),
            blocking: (j.blocking_mean > 0.0 && j.arrival_prob > 0.0)
                .then(|| Exponential::new(j.blocking_mean).expect("validated mean")),
            arrival_prob: j.arrival_prob,
            pipeline_offset: 6.0 * j.base_sigma,
        }
    }

    /// One member flow's send delay for this tick (non-negative).
    #[inline]
    fn sample_send_delay(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        let mut delay = match &self.base {
            Some(n) => n.sample(rng),
            None => 0.0,
        };
        if let Some(blk) = &self.blocking {
            if rng.next_f64() < self.arrival_prob {
                delay += blk.sample(rng);
            }
        }
        (self.pipeline_offset + delay).max(0.0)
    }
}

#[derive(Debug, Default)]
struct CohortStats {
    emitted: u64,
}

/// Read handle for cohort instrumentation (single-threaded shared state,
/// like the gateway handles).
#[derive(Debug, Clone)]
pub struct CohortHandle {
    stats: Rc<RefCell<CohortStats>>,
    flows: u32,
}

impl CohortHandle {
    /// Packets emitted so far (over all member flows).
    pub fn emitted(&self) -> u64 {
        self.stats.borrow().emitted
    }

    /// Number of member flows this cohort superposes.
    pub fn flows(&self) -> u32 {
        self.flows
    }
}

/// Per-member next-fire state of a stochastic cohort (heap mode).
#[derive(Debug)]
struct MemberState {
    sched: Box<dyn MemberSchedule>,
    /// Member `m`'s clock start offset (sorted ascending; the member
    /// index is the position in this vector).
    phases: Vec<SimDuration>,
    /// `(next nominal fire time, member)` — `Reverse` turns the std
    /// max-heap into a min-heap popping in `(time, member)` order.
    heap: BinaryHeap<Reverse<(SimTime, u32)>>,
}

/// A node emitting the superposed arrival process of K padded flows:
/// an exact comb for deterministic schedules, a per-member next-fire
/// heap for stochastic ones (see the module docs).
pub struct FlowCohort {
    /// Unique nominal phases (offset from each period start, `< τ`),
    /// sorted ascending, with the number of member flows at each.
    schedule: Vec<(SimDuration, u32)>,
    tau: SimDuration,
    next: NodeId,
    flow: FlowId,
    packet_size: u32,
    /// Wire-size law for variable-payload defences (`None` → every
    /// packet is exactly `packet_size`, zero RNG draws).
    size_law: Option<Box<dyn ContinuousDist>>,
    jitter: Option<JitterSamplers>,
    /// Per-member state when a [`MemberSchedule`] is installed
    /// (stochastic mode); `None` runs the exact comb.
    member: Option<MemberState>,
    /// Index into `schedule` of the next emission.
    idx: usize,
    /// Nominal start of the current period cycle (`j·τ`; emissions of
    /// cycle `j` fire at `j·τ + phase`).
    cycle_base: SimTime,
    stats: Rc<RefCell<CohortStats>>,
    label: String,
}

impl FlowCohort {
    /// A cohort of `phases.len()` flows with period `tau`, sending every
    /// emission to `next`. `phases[k]` is flow k's clock start offset;
    /// flow k emits at `phases[k] + j·τ` for `j ≥ 1`, matching a
    /// `SenderGateway` built `with_start_phase(phases[k])`.
    ///
    /// # Panics
    /// Panics if `tau` is zero, `phases` is empty, or any phase is
    /// `≥ tau` (phases are per-period offsets; configuration constants).
    pub fn new(
        next: NodeId,
        tau: SimDuration,
        phases: &[SimDuration],
        packet_size: u32,
    ) -> (CohortHandle, Self) {
        assert!(tau > SimDuration::ZERO, "cohort period must be positive");
        assert!(!phases.is_empty(), "cohort needs at least one flow");
        assert!(
            phases.iter().all(|&p| p < tau),
            "cohort phases must lie within one period"
        );
        let mut sorted: Vec<SimDuration> = phases.to_vec();
        sorted.sort_unstable();
        let mut schedule: Vec<(SimDuration, u32)> = Vec::new();
        for p in sorted {
            match schedule.last_mut() {
                Some((q, count)) if *q == p => *count += 1,
                _ => schedule.push((p, 1)),
            }
        }
        let flows = phases.len() as u32;
        let stats = Rc::new(RefCell::new(CohortStats::default()));
        (
            CohortHandle {
                stats: Rc::clone(&stats),
                flows,
            },
            Self {
                schedule,
                tau,
                next,
                flow: COHORT_FLOW,
                packet_size,
                size_law: None,
                jitter: None,
                member: None,
                idx: 0,
                cycle_base: SimTime::ZERO,
                stats,
                label: "cohort".to_string(),
            },
        )
    }

    /// Emit under a specific wire flow id (default [`COHORT_FLOW`]).
    pub fn with_flow(mut self, flow: FlowId) -> Self {
        self.flow = flow;
        self
    }

    /// Enable the per-emission disturbance model (default: none — exact
    /// nominal combs, zero RNG draws).
    pub fn with_jitter(mut self, jitter: CohortJitter) -> Self {
        self.jitter = Some(JitterSamplers::new(jitter));
        self
    }

    /// Builder-style label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Install a per-member interval source, switching the cohort from
    /// the exact comb to the stochastic heap (see the module docs).
    /// Member `m` is the m-th entry of the sorted phase vector; its
    /// first emission lands at `phase_m + T₁(m)` where `T₁` is the
    /// member's first interval draw, matching a gateway's first tick at
    /// `start_phase + T₁`.
    pub fn with_member_schedule(mut self, sched: Box<dyn MemberSchedule>) -> Self {
        let mut phases = Vec::new();
        for &(p, count) in &self.schedule {
            for _ in 0..count {
                phases.push(p);
            }
        }
        let heap = BinaryHeap::with_capacity(phases.len());
        self.member = Some(MemberState {
            sched,
            phases,
            heap,
        });
        self
    }

    /// Install a wire-size law for variable-payload defences: each
    /// emission samples its size (floored to whole bytes, min 1).
    /// Deterministic laws make zero RNG draws, preserving bit-exactness.
    pub fn with_packet_size_law(mut self, law: Box<dyn ContinuousDist>) -> Self {
        self.size_law = Some(law);
        self
    }

    /// Wire size of one emission (a draw under a size law, else the
    /// fixed configured size).
    #[inline]
    fn sample_size(&self, rng: &mut Xoshiro256StarStar) -> u32 {
        match &self.size_law {
            Some(law) => law.sample(rng).floor().max(1.0) as u32,
            None => self.packet_size,
        }
    }

    /// Nominal absolute time of the emission at `self.idx`.
    #[inline]
    fn next_nominal(&self) -> SimTime {
        self.cycle_base + self.schedule[self.idx].0
    }

    /// Floor an interval draw to a nonzero duration so the re-armed
    /// timer always advances sim time (no same-instant livelock).
    #[inline]
    fn interval_duration(secs: f64) -> SimDuration {
        let d = SimDuration::from_secs_f64(secs);
        SimDuration::from_nanos(d.as_nanos().max(1))
    }

    /// Stochastic-mode tick: pop every member due now (in `(time,
    /// member)` order), emit one packet each — per-emission draw order
    /// is jitter δ, wire size, next interval — and re-arm one timer at
    /// the new heap minimum.
    fn on_timer_member(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let Some(ms) = self.member.as_mut() else {
            return;
        };
        let mut emitted = 0u64;
        while let Some(&Reverse((t, m))) = ms.heap.peek() {
            if t > now {
                break;
            }
            ms.heap.pop();
            let delay = self.jitter.as_ref().map(|j| j.sample_send_delay(ctx.rng));
            let size = match &self.size_law {
                Some(law) => law.sample(ctx.rng).floor().max(1.0) as u32,
                None => self.packet_size,
            };
            let pkt = ctx.spawn_packet(self.flow, PacketKind::Dummy, size);
            match delay {
                Some(d) => ctx.send_after(SimDuration::from_secs_f64(d), self.next, pkt),
                None => ctx.send_now(self.next, pkt),
            }
            let interval = ms.sched.next_interval_secs(m, ctx.rng);
            ms.heap
                .push(Reverse((t + Self::interval_duration(interval), m)));
            emitted += 1;
        }
        self.stats.borrow_mut().emitted += emitted;
        if let Some(&Reverse((t, _))) = ms.heap.peek() {
            ctx.schedule_timer(t.saturating_since(now), TICK);
        }
    }
}

impl Node for FlowCohort {
    fn on_packet(&mut self, _packet: crate::packet::Packet, _ctx: &mut Context<'_>) {
        debug_assert!(false, "cohorts generate traffic; nothing routes to them");
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if let Some(ms) = self.member.as_mut() {
            // Stochastic mode: seed every member's next-fire time in
            // member order (one interval draw each), then arm one timer
            // at the heap minimum.
            ms.heap.clear();
            for (m, &phase) in ms.phases.iter().enumerate() {
                let m = m as u32;
                let first = ms.sched.next_interval_secs(m, ctx.rng);
                let t = SimTime::ZERO + phase + Self::interval_duration(first);
                ms.heap.push(Reverse((t, m)));
            }
            if let Some(&Reverse((t, _))) = ms.heap.peek() {
                ctx.schedule_timer(t.saturating_since(ctx.now()), TICK);
            }
            return;
        }
        // First emissions land at phase + τ, one period after each
        // member's clock start — as a real gateway's first tick does.
        self.idx = 0;
        self.cycle_base = SimTime::ZERO + self.tau;
        let first = self.next_nominal();
        ctx.schedule_timer(first.saturating_since(ctx.now()), TICK);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_>) {
        debug_assert_eq!(tag, TICK);
        if self.member.is_some() {
            self.on_timer_member(ctx);
            return;
        }
        let (_, count) = self.schedule[self.idx];
        self.stats.borrow_mut().emitted += count as u64;
        for _ in 0..count {
            // Per-emission draw order: wire size (variable-payload
            // defences), then the member's jitter δ.
            let size = self.sample_size(ctx.rng);
            let pkt = ctx.spawn_packet(self.flow, PacketKind::Dummy, size);
            match &self.jitter {
                // One independent δ per member flow, as each gateway's
                // tick would draw its own.
                Some(j) => {
                    let delay = j.sample_send_delay(ctx.rng);
                    ctx.send_after(SimDuration::from_secs_f64(delay), self.next, pkt);
                }
                None => ctx.send_now(self.next, pkt),
            }
        }
        // Advance along the phase cycle; wrap into the next period.
        self.idx += 1;
        if self.idx == self.schedule.len() {
            self.idx = 0;
            self.cycle_base += self.tau;
        }
        let next = self.next_nominal();
        ctx.schedule_timer(next.saturating_since(ctx.now()), TICK);
    }

    fn reset(&mut self) {
        self.idx = 0;
        self.cycle_base = SimTime::ZERO;
        if let Some(ms) = self.member.as_mut() {
            ms.heap.clear();
            ms.sched.reset();
        }
        *self.stats.borrow_mut() = CohortStats::default();
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimBuilder;
    use crate::observer::WindowedObserver;
    use crate::tap::Tap;
    use linkpad_stats::rng::MasterSeed;

    const TAU: SimDuration = SimDuration::from_nanos(10_000_000); // 10 ms

    fn ms(x: f64) -> SimDuration {
        SimDuration::from_millis_f64(x)
    }

    #[test]
    fn comb_times_are_exact_nominal_instants() {
        let mut b = SimBuilder::new(MasterSeed::new(1));
        let (tap, node) = Tap::new(None, None);
        let tap_id = b.add_node(Box::new(node));
        let (handle, cohort) = FlowCohort::new(tap_id, TAU, &[ms(0.0), ms(2.0), ms(5.0)], 500);
        b.add_node(Box::new(cohort));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(0.0255));
        // Flows at phases {0, 2, 5} ms: emissions at 10, 12, 15, 20, 22,
        // 25 ms — exactly, to the nanosecond (no jitter → no RNG).
        let nanos: Vec<u64> = tap.timestamps().iter().map(|t| t.as_nanos()).collect();
        assert_eq!(
            nanos,
            vec![10_000_000, 12_000_000, 15_000_000, 20_000_000, 22_000_000, 25_000_000]
        );
        assert_eq!(handle.emitted(), 6);
        assert_eq!(handle.flows(), 3);
    }

    #[test]
    fn synchronized_phases_collapse_into_bursts() {
        let mut b = SimBuilder::new(MasterSeed::new(2));
        let (tap, node) = Tap::new(None, None);
        let tap_id = b.add_node(Box::new(node));
        let (handle, cohort) = FlowCohort::new(tap_id, TAU, &[SimDuration::ZERO; 64], 500);
        assert_eq!(cohort.schedule.len(), 1, "one unique phase");
        b.add_node(Box::new(cohort));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(0.05));
        // 5 periods × 64 flows, all at exact multiples of τ.
        assert_eq!(handle.emitted(), 5 * 64);
        assert_eq!(tap.count(), 5 * 64);
        tap.with_timestamps(|ts| {
            assert!(ts.iter().all(|t| t.as_nanos() % TAU.as_nanos() == 0));
        });
    }

    #[test]
    fn window_counts_match_flows_times_windows_over_tau() {
        let mut b = SimBuilder::new(MasterSeed::new(3));
        let (obs, node) = WindowedObserver::new(ms(100.0), None);
        let obs_id = b.add_node(Box::new(node));
        let phases: Vec<SimDuration> = (0..40).map(|k| ms(0.25 * k as f64)).collect();
        let (_, cohort) = FlowCohort::new(obs_id, TAU, &phases, 500);
        b.add_node(Box::new(cohort));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        // Full windows hold flows × W/τ = 40 × 10 arrivals.
        let counts = obs.counts();
        assert!(counts.len() >= 9);
        for &c in &counts[1..8] {
            assert_eq!(c, 400.0, "{counts:?}");
        }
    }

    #[test]
    fn jitter_shifts_sends_without_changing_counts() {
        let run = |jitter: Option<CohortJitter>| {
            let mut b = SimBuilder::new(MasterSeed::new(4));
            let (tap, node) = Tap::new(None, None);
            let tap_id = b.add_node(Box::new(node));
            let (_, mut cohort) = FlowCohort::new(tap_id, TAU, &[ms(0.0), ms(4.0)], 500);
            if let Some(j) = jitter {
                cohort = cohort.with_jitter(j);
            }
            b.add_node(Box::new(cohort));
            let mut sim = b.build().unwrap();
            // Stop mid-period so a µs jitter shift cannot push the last
            // emission past the run bound.
            sim.run_until(SimTime::from_secs_f64(0.9995));
            tap.timestamps()
        };
        let exact = run(None);
        let jittered = run(Some(CohortJitter {
            base_sigma: 6e-6,
            blocking_mean: 6e-6,
            arrival_prob: 0.1,
        }));
        assert_eq!(exact.len(), jittered.len(), "jitter never drops a tick");
        for (e, j) in exact.iter().zip(&jittered) {
            let shift = j.saturating_since(*e).as_secs_f64();
            assert!(
                (0.0..100e-6).contains(&shift),
                "µs-scale causal shift, got {shift}"
            );
        }
    }

    #[test]
    fn reset_replays_bit_identically() {
        let mut b = SimBuilder::new(MasterSeed::new(5));
        let (tap, node) = Tap::new(None, None);
        let tap_id = b.add_node(Box::new(node));
        let (handle, cohort) = FlowCohort::new(tap_id, TAU, &[ms(1.0), ms(7.0)], 500);
        b.add_node(Box::new(cohort.with_jitter(CohortJitter {
            base_sigma: 6e-6,
            blocking_mean: 6e-6,
            arrival_prob: 0.4,
        })));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(0.5));
        let first = tap.timestamps();
        assert!(handle.emitted() > 0);
        sim.reset(MasterSeed::new(5));
        assert_eq!(handle.emitted(), 0, "reset clears instrumentation");
        sim.run_until(SimTime::from_secs_f64(0.5));
        assert_eq!(tap.timestamps(), first);
    }

    #[test]
    #[should_panic(expected = "phases must lie within one period")]
    fn phase_beyond_period_panics() {
        let mut b = SimBuilder::new(MasterSeed::new(6));
        let id = b.reserve();
        let _ = FlowCohort::new(id, TAU, &[TAU], 500);
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn empty_cohort_panics() {
        let mut b = SimBuilder::new(MasterSeed::new(7));
        let id = b.reserve();
        let _ = FlowCohort::new(id, TAU, &[], 500);
    }

    #[test]
    fn deterministic_law_heap_matches_the_comb_bit_exactly() {
        // A Deterministic(τ) member schedule drives the heap along the
        // same nominal grid the comb walks, with zero RNG draws — the
        // two modes must agree to the nanosecond.
        let run = |member: bool| {
            let mut b = SimBuilder::new(MasterSeed::new(11));
            let (tap, node) = Tap::new(None, None);
            let tap_id = b.add_node(Box::new(node));
            let (_, mut cohort) =
                FlowCohort::new(tap_id, TAU, &[ms(0.0), ms(2.0), ms(5.0), ms(5.0)], 500);
            if member {
                let law = Box::new(linkpad_stats::dist::Deterministic::new(0.010).unwrap());
                cohort = cohort.with_member_schedule(Box::new(LawSchedule::new(law)));
            }
            b.add_node(Box::new(cohort));
            let mut sim = b.build().unwrap();
            sim.run_until(SimTime::from_secs_f64(0.2005));
            tap.timestamps()
        };
        let comb = run(false);
        let heap = run(true);
        assert!(!comb.is_empty());
        assert_eq!(comb, heap);
    }

    #[test]
    fn stochastic_heap_replays_bit_identically_after_reset() {
        let mut b = SimBuilder::new(MasterSeed::new(12));
        let (tap, node) = Tap::new(None, None);
        let tap_id = b.add_node(Box::new(node));
        let phases: Vec<SimDuration> = (0..16).map(|k| ms(0.5 * k as f64)).collect();
        let (handle, cohort) = FlowCohort::new(tap_id, TAU, &phases, 500);
        let law = Box::new(Exponential::new(0.010).unwrap());
        b.add_node(Box::new(
            cohort.with_member_schedule(Box::new(LawSchedule::new(law))),
        ));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(0.5));
        let first = tap.timestamps();
        assert!(handle.emitted() > 0);
        sim.reset(MasterSeed::new(12));
        assert_eq!(handle.emitted(), 0);
        sim.run_until(SimTime::from_secs_f64(0.5));
        assert_eq!(tap.timestamps(), first);
    }

    #[test]
    fn stochastic_heap_rate_matches_the_law_mean() {
        // 32 members with exponential interval law of mean τ emit at
        // ~32/τ packets per second in steady state.
        let mut b = SimBuilder::new(MasterSeed::new(13));
        let (tap, node) = Tap::new(None, None);
        let tap_id = b.add_node(Box::new(node));
        let phases: Vec<SimDuration> = (0..32).map(|k| ms(0.25 * k as f64)).collect();
        let (_, cohort) = FlowCohort::new(tap_id, TAU, &phases, 500);
        let law = Box::new(Exponential::new(0.010).unwrap());
        b.add_node(Box::new(
            cohort.with_member_schedule(Box::new(LawSchedule::new(law))),
        ));
        let mut sim = b.build().unwrap();
        let secs = 20.0;
        sim.run_until(SimTime::from_secs_f64(secs));
        let expected = 32.0 * secs / 0.010;
        let got = tap.count() as f64;
        assert!(
            (got - expected).abs() / expected < 0.03,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn size_law_draws_variable_wire_sizes() {
        let mut b = SimBuilder::new(MasterSeed::new(14));
        let (obs, node) = WindowedObserver::new(ms(100.0), None);
        let obs_id = b.add_node(Box::new(node));
        let (_, cohort) = FlowCohort::new(obs_id, TAU, &[ms(0.0), ms(3.0)], 500);
        let law = Box::new(linkpad_stats::dist::Uniform::new(300.0, 901.0).unwrap());
        b.add_node(Box::new(cohort.with_packet_size_law(law)));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(2.0));
        let series = obs.window_series();
        let (count, bytes) = series
            .iter()
            .fold((0u64, 0u64), |(c, by), w| (c + w.count, by + w.bytes));
        assert!(count > 100);
        let mean = bytes as f64 / count as f64;
        // U[300, 901) floored to whole bytes has mean ≈ 600.
        assert!((mean - 600.0).abs() < 25.0, "mean wire size {mean}");
    }
}
