//! Streaming windowed link observer — the aggregate-link adversary's
//! measurement instrument.
//!
//! A [`Tap`](crate::tap::Tap) stores every arrival timestamp, which is
//! the right instrument for per-flow captures (memory `O(arrivals)`,
//! and the detection pipeline wants the raw PIATs anyway). On an
//! *aggregated* trunk carrying 10⁴ padded flows the same run produces
//! millions of arrivals per simulated second, almost all of which the
//! aggregate-link adversary immediately folds into coarse statistics.
//! [`WindowedObserver`] does that folding online: arrivals are binned
//! into fixed-width time windows and each window keeps only
//!
//! * the **arrival count**,
//! * the **byte total** (→ byte rate), and
//! * the **PIAT moments** (count/mean/variance/… via
//!   [`RunningMoments`]) of inter-arrival times whose *later* arrival
//!   fell inside the window.
//!
//! Memory is `O(windows)` = `O(observed time / window width)` —
//! independent of the arrival count — so the observer sustains trunks
//! that would make a store-everything tap reallocate without bound.
//!
//! **Information barrier:** the observer sees exactly what a passive
//! wire tap sees — arrival timestamps and on-the-wire sizes. It never
//! reads packet kinds or flow ids (packets are "perfectly encrypted" in
//! the threat model), so everything the [`ObserverHandle`] exposes is
//! legitimately available to the adversary.

use crate::engine::Context;
use crate::fault::OutageSchedule;
use crate::node::{Node, NodeId};
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use linkpad_stats::moments::RunningMoments;
use std::cell::RefCell;
use std::rc::Rc;

/// Statistics of one fixed-width observation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Arrivals whose timestamp fell inside the window.
    pub count: u64,
    /// Sum of on-the-wire sizes of those arrivals, bytes.
    pub bytes: u64,
    /// Moments of the inter-arrival times ending in this window (an
    /// inter-arrival spanning a window boundary is attributed to the
    /// window of its *later* arrival). Seconds.
    pub piats: RunningMoments,
    /// Fraction of the window the observer was actually watching, in
    /// `[0, 1]`. `1.0` for a fault-free observer; measurement gaps
    /// ([`WindowedObserver::with_gaps`]) stamp the up-time fraction of
    /// each window, and a fully-blind window has coverage `0.0` with
    /// zero counts. This is the validity mask gap-aware estimators key
    /// on: skip (or rescale by) windows below a coverage threshold.
    pub coverage: f64,
}

impl WindowStats {
    /// A window with nothing observed (the identity of [`WindowStats::merge`]).
    pub fn empty() -> Self {
        Self {
            count: 0,
            bytes: 0,
            piats: RunningMoments::new(),
            coverage: 1.0,
        }
    }

    /// Fold another window's statistics into this one.
    ///
    /// Counts and bytes **superpose exactly** (the merged window counts
    /// precisely the union of both arrival sets), so summing per-shard
    /// series reconstructs the single-trunk count/byte series
    /// bit-identically. The PIAT moments **pool**: the merged
    /// accumulator is the exact pairwise combination
    /// ([`RunningMoments::merge`]) of both windows' inter-arrival
    /// populations — the moments of all PIATs observed by either
    /// component, *not* the inter-arrival process of the interleaved
    /// union (which cannot be reconstructed from per-component
    /// statistics in `O(windows)`; see DESIGN.md, cohort superposition).
    /// Merging with [`WindowStats::empty`] on either side is an exact
    /// identity, bit for bit.
    ///
    /// Coverage merges as the **minimum**: merged shard counts are
    /// only as valid as the least-covered component (in practice every
    /// shard of one run shares one gap schedule, so the minimum is
    /// that common coverage — gaps propagate unchanged across the
    /// shard reduction). The empty window's coverage of `1.0`
    /// preserves the merge identity.
    pub fn merge(&mut self, other: &WindowStats) {
        self.count += other.count;
        self.bytes += other.bytes;
        self.piats.merge(&other.piats);
        self.coverage = self.coverage.min(other.coverage);
    }
}

/// Merge one window series into another element-wise (window `i` of
/// `from` folds into window `i` of `into` via [`WindowStats::merge`]).
/// Ragged lengths are fine: `into` grows to cover `from`, and windows
/// present in only one series pass through unchanged (merge with the
/// empty window is exact). This is the shard-reduction step: summing the
/// per-shard trunk series of a [`ShardedAggregate`-style] split
/// reconstructs the whole trunk's count/byte view.
///
/// [`ShardedAggregate`-style]: WindowStats::merge
pub fn merge_window_series(into: &mut Vec<WindowStats>, from: &[WindowStats]) {
    if into.len() < from.len() {
        into.resize(from.len(), WindowStats::empty());
    }
    for (dst, src) in into.iter_mut().zip(from) {
        dst.merge(src);
    }
}

#[derive(Debug)]
struct ObserverState {
    windows: Vec<WindowStats>,
    last_arrival: Option<SimTime>,
    arrivals: u64,
    /// Measurement-gap schedule (configuration, survives `clear`).
    gaps: Option<OutageSchedule>,
}

impl ObserverState {
    /// Drop everything observed, keeping the window buffer's capacity
    /// and the gap schedule — configuration, not observation — (shared
    /// by [`ObserverHandle::clear`] and the node's reset hook).
    fn clear(&mut self) {
        self.windows.clear();
        self.last_arrival = None;
        self.arrivals = 0;
    }

    /// Grow the series to `len` windows, stamping each new window's
    /// coverage from the gap schedule (`1.0` without one — the resize
    /// default is [`WindowStats::empty`]).
    #[cold]
    fn materialize(&mut self, len: usize, window_nanos: u64) {
        let old = self.windows.len();
        self.windows.resize(len, WindowStats::empty());
        if let Some(gaps) = self.gaps {
            for (i, w) in self.windows.iter_mut().enumerate().skip(old) {
                let a = SimTime::from_nanos(i as u64 * window_nanos);
                let b = SimTime::from_nanos((i as u64 + 1) * window_nanos);
                w.coverage = gaps.coverage(a, b);
            }
        }
    }

    #[inline]
    fn record(&mut self, now: SimTime, size_bytes: u32, window_nanos: u64) {
        if self.gaps.is_some() {
            self.record_gapped(now, size_bytes, window_nanos);
        } else {
            self.record_watched(now, size_bytes, window_nanos);
        }
    }

    /// The gapped fold: drop arrivals the observer is blind to, then
    /// delegate to the watched fold. Outlined so the gap-free
    /// per-arrival path ([`ObserverState::record_watched`]) keeps the
    /// exact pre-fault-injection body.
    #[cold]
    #[inline(never)]
    fn record_gapped(&mut self, now: SimTime, size_bytes: u32, window_nanos: u64) {
        if self
            .gaps
            .expect("gapped fold requires a schedule")
            .is_down(now)
        {
            // Blind: the arrival is never seen. The PIAT chain
            // restarts after the gap — an inter-arrival spanning
            // unobserved arrivals would be a fabricated sample.
            self.last_arrival = None;
            return;
        }
        self.record_watched(now, size_bytes, window_nanos);
    }

    /// Fold one watched arrival into its window.
    #[inline]
    fn record_watched(&mut self, now: SimTime, size_bytes: u32, window_nanos: u64) {
        let idx = (now.as_nanos() / window_nanos) as usize;
        if self.windows.len() <= idx {
            self.materialize(idx + 1, window_nanos);
        }
        let w = &mut self.windows[idx];
        w.count += 1;
        w.bytes += size_bytes as u64;
        if let Some(prev) = self.last_arrival {
            w.piats.push(now.saturating_since(prev).as_secs_f64());
        }
        self.last_arrival = Some(now);
        self.arrivals += 1;
    }
}

/// Shared handle for reading what a [`WindowedObserver`] accumulated,
/// usable after the simulation has run (the engine owns the node).
/// Single-threaded `Rc<RefCell<_>>` sharing, like
/// [`TapHandle`](crate::tap::TapHandle).
#[derive(Debug, Clone)]
pub struct ObserverHandle {
    state: Rc<RefCell<ObserverState>>,
    window: SimDuration,
}

impl ObserverHandle {
    /// The configured window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// The configured window width in seconds.
    pub fn window_secs(&self) -> f64 {
        self.window.as_secs_f64()
    }

    /// Number of windows spanned so far (windows exist from time zero up
    /// to the latest arrival; trailing quiet time opens no windows). The
    /// last window is generally still filling.
    pub fn windows(&self) -> usize {
        self.state.borrow().windows.len()
    }

    /// Total arrivals observed (`Σ count` over all windows).
    pub fn arrivals(&self) -> u64 {
        self.state.borrow().arrivals
    }

    /// Run `f` over the raw per-window statistics without cloning them.
    pub fn with_windows<R>(&self, f: impl FnOnce(&[WindowStats]) -> R) -> R {
        f(&self.state.borrow().windows)
    }

    /// Clone out the whole window series — the mergeable trunk view a
    /// sharded run extracts from each worker (see
    /// [`merge_window_series`]).
    pub fn window_series(&self) -> Vec<WindowStats> {
        self.with_windows(|ws| ws.to_vec())
    }

    /// Per-window arrival counts, as `f64` for the estimators.
    pub fn counts(&self) -> Vec<f64> {
        self.with_windows(|ws| ws.iter().map(|w| w.count as f64).collect())
    }

    /// Per-window byte rates (bytes per second over the full window
    /// width; the trailing partially-filled window reads low).
    pub fn byte_rates(&self) -> Vec<f64> {
        let secs = self.window.as_secs_f64();
        self.with_windows(|ws| ws.iter().map(|w| w.bytes as f64 / secs).collect())
    }

    /// Per-window PIAT sample means, seconds (`NaN` for windows with no
    /// completed inter-arrival).
    pub fn piat_means(&self) -> Vec<f64> {
        self.with_windows(|ws| {
            ws.iter()
                .map(|w| w.piats.mean().unwrap_or(f64::NAN))
                .collect()
        })
    }

    /// Per-window unbiased PIAT sample variances, s² (`NaN` for windows
    /// with fewer than two completed inter-arrivals).
    pub fn piat_variances(&self) -> Vec<f64> {
        self.with_windows(|ws| {
            ws.iter()
                .map(|w| w.piats.variance().unwrap_or(f64::NAN))
                .collect()
        })
    }

    /// Per-window coverage fractions (`1.0` everywhere for a gap-free
    /// observer) — the validity mask for gap-aware estimation.
    pub fn coverages(&self) -> Vec<f64> {
        self.with_windows(|ws| ws.iter().map(|w| w.coverage).collect())
    }

    /// Mean coverage over the observed span (`1.0` when no windows
    /// exist yet).
    pub fn mean_coverage(&self) -> f64 {
        self.with_windows(|ws| {
            if ws.is_empty() {
                1.0
            } else {
                ws.iter().map(|w| w.coverage).sum::<f64>() / ws.len() as f64
            }
        })
    }

    /// Pre-reserve window capacity for an expected observation span.
    pub fn reserve(&self, windows: usize) {
        self.state.borrow_mut().windows.reserve(windows);
    }

    /// Drop everything observed so far (e.g. to discard a warm-up span).
    pub fn clear(&self) {
        self.state.borrow_mut().clear();
    }
}

/// The observer node: records window statistics for **every** packet
/// crossing it (an aggregate link has no flow filter) and forwards the
/// packet unchanged with zero delay, like a passive splitter.
#[derive(Debug)]
pub struct WindowedObserver {
    state: Rc<RefCell<ObserverState>>,
    window_nanos: u64,
    /// Downstream node (`None` = capture-only endpoint).
    next: Option<NodeId>,
    label: String,
}

impl WindowedObserver {
    /// An observer with fixed window width `window`, forwarding to
    /// `next`. Windows are anchored at simulation time zero: window `i`
    /// covers `[i·window, (i+1)·window)`.
    ///
    /// # Panics
    /// Panics if `window` is zero (configuration constant).
    pub fn new(window: SimDuration, next: Option<NodeId>) -> (ObserverHandle, Self) {
        assert!(
            window > SimDuration::ZERO,
            "observer window width must be positive"
        );
        let state = Rc::new(RefCell::new(ObserverState {
            windows: Vec::new(),
            last_arrival: None,
            arrivals: 0,
            gaps: None,
        }));
        (
            ObserverHandle {
                state: Rc::clone(&state),
                window,
            },
            Self {
                state,
                window_nanos: window.as_nanos(),
                next,
                label: "observer".to_string(),
            },
        )
    }

    /// Builder-style label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Give the observer a measurement-gap schedule: while the
    /// schedule is down the observer is blind — arrivals are neither
    /// counted nor timestamped (they still pass through to `next`),
    /// the PIAT chain restarts after each gap, and every materialized
    /// window carries its up-time fraction in
    /// [`WindowStats::coverage`]. The schedule is configuration and
    /// survives [`ObserverHandle::clear`] and resets.
    pub fn with_gaps(self, gaps: OutageSchedule) -> Self {
        self.state.borrow_mut().gaps = Some(gaps);
        self
    }
}

impl Node for WindowedObserver {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        self.state
            .borrow_mut()
            .record(ctx.now(), packet.size_bytes, self.window_nanos);
        if let Some(next) = self.next {
            ctx.send_now(next, packet);
        }
    }

    fn on_packets(&mut self, packets: &mut Vec<Packet>, ctx: &mut Context<'_>) {
        // Burst path: one state borrow for the whole batch.
        {
            let mut st = self.state.borrow_mut();
            let now = ctx.now();
            for packet in packets.iter() {
                st.record(now, packet.size_bytes, self.window_nanos);
            }
        }
        if let Some(next) = self.next {
            for packet in packets.drain(..) {
                ctx.send_now(next, packet);
            }
        } else {
            packets.clear();
        }
    }

    fn reset(&mut self) {
        self.state.borrow_mut().clear();
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimBuilder;
    use crate::packet::{FlowId, PacketKind};
    use crate::sink::Sink;
    use linkpad_stats::rng::MasterSeed;

    /// Emits one 500-byte packet every `period`.
    struct Clock {
        dst: NodeId,
        period: SimDuration,
        remaining: u32,
    }
    impl Node for Clock {
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.schedule_timer(self.period, 0);
        }
        fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
            let pkt = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 500);
            ctx.send_now(self.dst, pkt);
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.schedule_timer(self.period, 0);
            }
        }
    }

    fn run_clocked(period_ms: f64, total: u32, window_ms: f64) -> (ObserverHandle, u32) {
        let mut b = SimBuilder::new(MasterSeed::new(1));
        let (sink_handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let (obs, node) =
            WindowedObserver::new(SimDuration::from_millis_f64(window_ms), Some(sink_id));
        let obs_id = b.add_node(Box::new(node));
        b.add_node(Box::new(Clock {
            dst: obs_id,
            period: SimDuration::from_millis_f64(period_ms),
            remaining: total,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::MAX);
        (obs, sink_handle.count() as u32)
    }

    #[test]
    fn windows_partition_a_periodic_stream() {
        // 10 ms period, 100 ms windows → 10 arrivals per full window.
        let (obs, forwarded) = run_clocked(10.0, 100, 100.0);
        assert_eq!(forwarded, 100, "observer forwards everything");
        assert_eq!(obs.arrivals(), 100);
        let counts = obs.counts();
        assert_eq!(counts.iter().sum::<f64>(), 100.0);
        // Arrivals at 10,20,…,1000 ms: window 0 covers [0,100) — nine
        // arrivals (t = 100 ms sits on the boundary and opens window 1)
        // — then ten per window until the last arrival opens window 10.
        assert_eq!(counts.len(), 11);
        assert_eq!(counts[0], 9.0, "{counts:?}");
        assert!(counts[1..10].iter().all(|&c| c == 10.0), "{counts:?}");
        assert_eq!(counts[10], 1.0);
        // Byte rate of a full window: 10 × 500 B / 0.1 s = 50 kB/s.
        assert_eq!(obs.byte_rates()[3], 50_000.0);
    }

    #[test]
    fn piat_moments_recover_the_period() {
        let (obs, _) = run_clocked(10.0, 60, 200.0);
        let means = obs.piat_means();
        let vars = obs.piat_variances();
        // Full windows: PIAT mean exactly the 10 ms period, zero variance.
        assert!((means[1] - 0.010).abs() < 1e-12, "{means:?}");
        assert_eq!(vars[1], 0.0);
        obs.with_windows(|ws| {
            assert_eq!(ws[1].piats.count(), 20);
            // Window 0 covers [0,200): 19 arrivals (t = 200 ms opens
            // window 1), and the first arrival starts the PIAT chain.
            assert_eq!(ws[0].piats.count(), 18);
        });
    }

    #[test]
    fn empty_windows_between_bursts_are_materialized() {
        // 400 ms period, 100 ms windows: three of every four windows are
        // empty — they must still exist (the series is a time series).
        let (obs, _) = run_clocked(400.0, 4, 100.0);
        let counts = obs.counts();
        assert_eq!(counts.len(), 17); // arrival at 1600 ms → window 16
        assert_eq!(counts.iter().sum::<f64>(), 4.0);
        assert_eq!(counts[4], 1.0);
        assert_eq!(counts[5], 0.0);
        assert!(obs.piat_means()[5].is_nan());
        assert!(obs.piat_variances()[4].is_nan()); // one PIAT, no variance
    }

    #[test]
    fn clear_discards_and_observer_keeps_window_config() {
        let (obs, _) = run_clocked(10.0, 30, 50.0);
        assert!(obs.windows() > 0 && obs.arrivals() == 30);
        obs.clear();
        assert_eq!(obs.windows(), 0);
        assert_eq!(obs.arrivals(), 0);
        assert_eq!(obs.window_secs(), 0.050);
    }

    #[test]
    #[should_panic(expected = "window width must be positive")]
    fn zero_window_panics() {
        let _ = WindowedObserver::new(SimDuration::ZERO, None);
    }

    /// Fold `(piat, bytes)` observations into one window.
    fn window_of(samples: &[(f64, u64)]) -> WindowStats {
        let mut w = WindowStats::empty();
        for &(piat, bytes) in samples {
            w.count += 1;
            w.bytes += bytes;
            w.piats.push(piat);
        }
        w
    }

    #[test]
    fn merge_of_split_halves_equals_sequential_folding() {
        // The satellite property: any split of a window's observation
        // population merges back to the sequential fold — counts/bytes
        // bit-for-bit, moments f64-equal (RunningMoments::merge is the
        // exact pairwise combination; tolerances cover re-association).
        let samples: Vec<(f64, u64)> = (0..257)
            .map(|i| (10e-3 + (i as f64 * 0.7).sin() * 8e-6, 500 + (i % 3)))
            .collect();
        let whole = window_of(&samples);
        for split in [0usize, 1, 64, 128, 256, 257] {
            let mut a = window_of(&samples[..split]);
            let b = window_of(&samples[split..]);
            a.merge(&b);
            assert_eq!(a.count, whole.count);
            assert_eq!(a.bytes, whole.bytes);
            assert_eq!(a.piats.count(), whole.piats.count());
            let (am, wm) = (a.piats.mean().unwrap(), whole.piats.mean().unwrap());
            assert!((am - wm).abs() < 1e-15, "split {split}: mean {am} vs {wm}");
            let (av, wv) = (a.piats.variance().unwrap(), whole.piats.variance().unwrap());
            assert!(
                ((av - wv) / wv).abs() < 1e-9,
                "split {split}: var {av:e} vs {wv:e}"
            );
        }
    }

    #[test]
    fn merge_with_empty_is_bit_identity() {
        let w = window_of(&[(0.01, 500), (0.0101, 500), (0.0099, 500)]);
        let mut a = w;
        a.merge(&WindowStats::empty());
        assert_eq!(a, w, "empty on the right is an exact identity");
        let mut e = WindowStats::empty();
        e.merge(&w);
        assert_eq!(e, w, "empty on the left is an exact identity");
    }

    #[test]
    fn series_merge_handles_ragged_lengths() {
        let (long, _) = run_clocked(10.0, 100, 100.0); // 11 windows
        let (short, _) = run_clocked(10.0, 40, 100.0); // 5 windows
        let mut merged = long.window_series();
        merge_window_series(&mut merged, &short.window_series());
        assert_eq!(merged.len(), 11);
        // Overlapping windows sum counts; the tail passes through.
        let long_counts = long.counts();
        let short_counts = short.counts();
        for (i, w) in merged.iter().enumerate() {
            let want = long_counts[i] + short_counts.get(i).copied().unwrap_or(0.0);
            assert_eq!(w.count as f64, want, "window {i}");
        }
        // Growing direction: short grows to cover long.
        let mut grown = short.window_series();
        merge_window_series(&mut grown, &long.window_series());
        assert_eq!(grown.len(), 11);
        assert_eq!(
            grown.iter().map(|w| w.count).sum::<u64>(),
            140,
            "all arrivals of both series survive the merge"
        );
    }

    fn run_clocked_gapped(
        period_ms: f64,
        total: u32,
        window_ms: f64,
        gaps: OutageSchedule,
    ) -> (ObserverHandle, u32) {
        let mut b = SimBuilder::new(MasterSeed::new(1));
        let (sink_handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let (obs, node) =
            WindowedObserver::new(SimDuration::from_millis_f64(window_ms), Some(sink_id));
        let obs_id = b.add_node(Box::new(node.with_gaps(gaps)));
        b.add_node(Box::new(Clock {
            dst: obs_id,
            period: SimDuration::from_millis_f64(period_ms),
            remaining: total,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::MAX);
        (obs, sink_handle.count() as u32)
    }

    #[test]
    fn gaps_blind_the_observer_but_not_the_wire() {
        // 10 ms period, 100 ms windows; down for the first 100 ms of
        // every 400 ms → every fourth window is fully blind.
        let gaps = OutageSchedule::new(
            SimDuration::from_millis_f64(400.0),
            SimDuration::from_millis_f64(100.0),
        );
        let (obs, forwarded) = run_clocked_gapped(10.0, 100, 100.0, gaps);
        assert_eq!(forwarded, 100, "blind arrivals still pass through");
        let counts = obs.counts();
        let cov = obs.coverages();
        assert_eq!(counts.len(), cov.len());
        // Window 0 covers [0,100) ms — fully down: zero coverage, zero
        // count. Window 1 is fully up.
        assert_eq!(cov[0], 0.0);
        assert_eq!(counts[0], 0.0);
        assert_eq!(cov[1], 1.0);
        assert_eq!(counts[1], 10.0);
        assert_eq!(cov[4], 0.0, "every fourth window blind: {cov:?}");
        assert_eq!(counts[4], 0.0);
        // Observed arrivals = total minus the blinded ones.
        let seen: f64 = counts.iter().sum();
        assert_eq!(obs.arrivals(), seen as u64);
        assert!(seen < 100.0);
        assert!((obs.mean_coverage() - cov.iter().sum::<f64>() / cov.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn piat_chain_restarts_after_a_gap() {
        // First arrival after each gap must start a fresh chain: no
        // recorded inter-arrival may span the 100 ms blind span (all
        // true PIATs are 10 ms).
        let gaps = OutageSchedule::new(
            SimDuration::from_millis_f64(400.0),
            SimDuration::from_millis_f64(100.0),
        );
        let (obs, _) = run_clocked_gapped(10.0, 200, 100.0, gaps);
        obs.with_windows(|ws| {
            for (i, w) in ws.iter().enumerate() {
                if let Some(mean) = w.piats.mean() {
                    assert!(
                        (mean - 0.010).abs() < 1e-9,
                        "window {i}: PIAT mean {mean} spans a gap"
                    );
                }
            }
        });
        // And the first up-window after a gap has one fewer PIAT than
        // arrivals (chain restart), like the very first window.
        obs.with_windows(|ws| {
            assert_eq!(ws[1].count, 10);
            assert_eq!(ws[1].piats.count(), 9, "chain restarted after gap");
        });
    }

    #[test]
    fn partial_gap_coverage_is_fractional() {
        // Down the first 30 ms of every 200 ms with 100 ms windows:
        // even windows have coverage 0.7, odd windows 1.0.
        let gaps = OutageSchedule::new(
            SimDuration::from_millis_f64(200.0),
            SimDuration::from_millis_f64(30.0),
        );
        let (obs, _) = run_clocked_gapped(10.0, 100, 100.0, gaps);
        let cov = obs.coverages();
        assert!((cov[0] - 0.7).abs() < 1e-9, "{cov:?}");
        assert_eq!(cov[1], 1.0);
        assert!((cov[2] - 0.7).abs() < 1e-9);
        // Counts in partially-covered windows are the up-time arrivals
        // only (arrivals at 30..100 ms step 10 → 7 of 10 survive).
        assert_eq!(obs.counts()[0], 7.0);
    }

    #[test]
    fn gap_schedule_survives_clear() {
        let gaps = OutageSchedule::new(
            SimDuration::from_millis_f64(400.0),
            SimDuration::from_millis_f64(100.0),
        );
        let (obs, _) = run_clocked_gapped(10.0, 50, 100.0, gaps);
        let before = obs.coverages();
        obs.clear();
        assert_eq!(obs.windows(), 0);
        // A cleared observer re-records with the same mask (the node's
        // reset path relies on this).
        let (obs2, _) = run_clocked_gapped(10.0, 50, 100.0, gaps);
        assert_eq!(obs2.coverages(), before);
    }

    #[test]
    fn merged_series_carries_the_minimum_coverage() {
        let mut a = WindowStats::empty();
        a.coverage = 0.6;
        let mut b = WindowStats::empty();
        b.count = 3;
        b.coverage = 0.9;
        a.merge(&b);
        assert_eq!(a.coverage, 0.6);
        assert_eq!(a.count, 3);
        // Ragged series merge: the tail's own coverage passes through.
        let mut series = vec![a];
        let mut tail = WindowStats::empty();
        tail.coverage = 0.25;
        merge_window_series(&mut series, &[b, tail]);
        assert_eq!(series[0].coverage, 0.6);
        assert_eq!(series[1].coverage, 0.25);
    }
}
