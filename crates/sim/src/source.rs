//! Distribution-driven traffic source.
//!
//! [`DistSource`] emits packets whose inter-arrival times and sizes come
//! from pluggable `linkpad-stats` distributions. This covers CBR payload
//! (deterministic intervals), Poisson cross traffic (exponential
//! intervals, categorical sizes), and bursty variants (Pareto intervals).
//! Richer behaviours (rate switching, diurnal modulation) live in
//! `linkpad-workloads` as their own nodes.

use crate::engine::Context;
use crate::node::{Node, NodeId};
use crate::packet::{FlowId, PacketKind};
use crate::time::SimDuration;
use linkpad_stats::dist::ContinuousDist;

/// A source emitting packets toward `dst`.
pub struct DistSource {
    dst: NodeId,
    flow: FlowId,
    kind: PacketKind,
    interval: Box<dyn ContinuousDist>,
    size: Box<dyn ContinuousDist>,
    /// Delay before the first emission.
    initial_delay: SimDuration,
    /// Stop after this many packets (`None` = unbounded).
    limit: Option<u64>,
    emitted: u64,
    label: String,
}

impl DistSource {
    /// New source: inter-arrival times from `interval` (seconds), sizes
    /// from `size` (bytes, rounded and clamped to at least 1).
    pub fn new(
        dst: NodeId,
        flow: FlowId,
        kind: PacketKind,
        interval: Box<dyn ContinuousDist>,
        size: Box<dyn ContinuousDist>,
    ) -> Self {
        Self {
            dst,
            flow,
            kind,
            interval,
            size,
            initial_delay: SimDuration::ZERO,
            limit: None,
            emitted: 0,
            label: "source".to_string(),
        }
    }

    /// Delay the first emission.
    pub fn with_initial_delay(mut self, delay: SimDuration) -> Self {
        self.initial_delay = delay;
        self
    }

    /// Stop after `n` packets.
    pub fn with_limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// Builder-style label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    fn arm_next(&mut self, ctx: &mut Context<'_>) {
        let gap = self.interval.sample(ctx.rng).max(0.0);
        ctx.schedule_timer(SimDuration::from_secs_f64(gap), 0);
    }
}

impl Node for DistSource {
    fn on_packet(&mut self, _packet: crate::packet::Packet, _ctx: &mut Context<'_>) {
        // Sources ignore inbound traffic.
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.limit == Some(0) {
            return;
        }
        let first =
            self.initial_delay + SimDuration::from_secs_f64(self.interval.sample(ctx.rng).max(0.0));
        ctx.schedule_timer(first, 0);
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut Context<'_>) {
        let size = self.size.sample(ctx.rng).round().max(1.0) as u32;
        let pkt = ctx.spawn_packet(self.flow, self.kind, size);
        ctx.send_now(self.dst, pkt);
        self.emitted += 1;
        if self.limit.is_none_or(|n| self.emitted < n) {
            self.arm_next(ctx);
        }
    }

    fn reset(&mut self) {
        self.emitted = 0;
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimBuilder;
    use crate::sink::Sink;
    use crate::time::SimTime;
    use linkpad_stats::dist::{Deterministic, Exponential};
    use linkpad_stats::rng::MasterSeed;

    #[test]
    fn cbr_source_emits_at_fixed_rate() {
        let mut b = SimBuilder::new(MasterSeed::new(1));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        b.add_node(Box::new(DistSource::new(
            sink_id,
            FlowId::PADDED,
            PacketKind::Payload,
            Box::new(Deterministic::new(0.1).unwrap()),
            Box::new(Deterministic::new(500.0).unwrap()),
        )));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.05));
        assert_eq!(handle.count(), 10);
        let times = handle.arrival_times();
        for (i, t) in times.iter().enumerate() {
            assert_eq!(t.as_nanos(), (i as u64 + 1) * 100_000_000);
        }
    }

    #[test]
    fn poisson_source_rate_is_right_on_average() {
        let mut b = SimBuilder::new(MasterSeed::new(2));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        b.add_node(Box::new(DistSource::new(
            sink_id,
            FlowId::CROSS,
            PacketKind::Cross,
            Box::new(Exponential::with_rate(200.0).unwrap()),
            Box::new(Deterministic::new(1500.0).unwrap()),
        )));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(50.0));
        let rate = handle.count() as f64 / 50.0;
        assert!((rate - 200.0).abs() < 10.0, "rate = {rate}");
    }

    #[test]
    fn limit_stops_emission() {
        let mut b = SimBuilder::new(MasterSeed::new(3));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        b.add_node(Box::new(
            DistSource::new(
                sink_id,
                FlowId::PADDED,
                PacketKind::Payload,
                Box::new(Deterministic::new(0.001).unwrap()),
                Box::new(Deterministic::new(64.0).unwrap()),
            )
            .with_limit(7),
        ));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(10.0));
        assert_eq!(handle.count(), 7);
    }

    #[test]
    fn zero_limit_emits_nothing() {
        let mut b = SimBuilder::new(MasterSeed::new(4));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        b.add_node(Box::new(
            DistSource::new(
                sink_id,
                FlowId::PADDED,
                PacketKind::Payload,
                Box::new(Deterministic::new(0.001).unwrap()),
                Box::new(Deterministic::new(64.0).unwrap()),
            )
            .with_limit(0),
        ));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(handle.count(), 0);
    }

    #[test]
    fn initial_delay_shifts_first_packet() {
        let mut b = SimBuilder::new(MasterSeed::new(5));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        b.add_node(Box::new(
            DistSource::new(
                sink_id,
                FlowId::PADDED,
                PacketKind::Payload,
                Box::new(Deterministic::new(0.010).unwrap()),
                Box::new(Deterministic::new(64.0).unwrap()),
            )
            .with_initial_delay(SimDuration::from_secs_f64(0.5))
            .with_label("delayed"),
        ));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        let first = handle.arrival_times()[0];
        assert_eq!(first.as_nanos(), 510_000_000);
    }

    #[test]
    fn sizes_are_clamped_to_at_least_one_byte() {
        let mut b = SimBuilder::new(MasterSeed::new(6));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        b.add_node(Box::new(
            DistSource::new(
                sink_id,
                FlowId::PADDED,
                PacketKind::Payload,
                Box::new(Deterministic::new(0.01).unwrap()),
                Box::new(Deterministic::new(-5.0).unwrap()), // degenerate size law
            )
            .with_limit(3),
        ));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(handle.count(), 3);
        assert_eq!(handle.bytes(), 3); // clamped to 1 byte each
    }
}
