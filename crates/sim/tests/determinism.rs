//! Determinism guards for the engine rewrite.
//!
//! 1. A property test that the ladder-queue event store pops events in
//!    exactly the `(time, seq)` order a reference `BinaryHeap` model
//!    produces, under randomized interleaved push/pop schedules.
//! 2. Replay tests: the same `MasterSeed` yields a bit-identical capture
//!    trace across two runs, and different seeds diverge.

use linkpad_sim::engine::SimBuilder;
use linkpad_sim::equeue::{EventKind, EventQueue};
use linkpad_sim::packet::{FlowId, PacketKind};
use linkpad_sim::sink::Sink;
use linkpad_sim::source::DistSource;
use linkpad_sim::tap::Tap;
use linkpad_sim::time::{SimDuration, SimTime};
use linkpad_stats::dist::Exponential;
use linkpad_stats::rng::{MasterSeed, Xoshiro256StarStar};
use rand_core::RngCore;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Drive the ladder queue and a `BinaryHeap` reference model through an
/// identical randomized schedule; their pop sequences must be identical.
fn check_against_model(seed: u64, ops: usize, time_spread: u64, burst: u64) {
    let mut rng = Xoshiro256StarStar::from_u64(seed);
    let mut queue = EventQueue::new();
    let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now = 0u64;
    let mut popped = Vec::new();
    let mut expected = Vec::new();

    for _ in 0..ops {
        let action = rng.next_u64() % 100;
        if action < 55 || model.is_empty() {
            // Push a batch of events at or after `now`. Occasional
            // same-timestamp bursts exercise FIFO tie-breaking.
            let n = 1 + rng.next_u64() % burst;
            let base = now + rng.next_u64() % time_spread;
            for _ in 0..n {
                let t = if rng.next_u64().is_multiple_of(4) {
                    base // deliberate timestamp collision
                } else {
                    now + rng.next_u64() % time_spread
                };
                let target = (rng.next_u64() % 7) as usize;
                let kind = if rng.next_u64().is_multiple_of(2) {
                    EventKind::Timer(seq)
                } else {
                    EventKind::Deliver(linkpad_sim::packet::Packet::new(
                        seq,
                        FlowId::PADDED,
                        PacketKind::Dummy,
                        500,
                        SimTime::from_nanos(t),
                    ))
                };
                queue.push(SimTime::from_nanos(t), seq, target, kind);
                model.push(Reverse((t, seq)));
                seq += 1;
            }
        } else {
            let Reverse(want) = model.pop().expect("model non-empty");
            let got = queue.pop().expect("queue matches model occupancy");
            now = want.0; // simulation time advances to the popped event
            expected.push(want);
            popped.push((got.time.as_nanos(), got.seq));
        }
    }
    // Drain both completely.
    while let Some(Reverse(want)) = model.pop() {
        let got = queue.pop().expect("queue matches model occupancy");
        expected.push(want);
        popped.push((got.time.as_nanos(), got.seq));
    }
    assert!(queue.pop().is_none(), "queue must drain with the model");
    assert_eq!(popped, expected, "pop order diverged (seed {seed})");
}

#[test]
fn ladder_queue_matches_heap_model_across_schedules() {
    // Many seeds × several workload shapes: narrow/wide time spreads and
    // small/large same-instant bursts.
    for seed in 0..24u64 {
        check_against_model(seed, 2_000, 1_000, 4);
        check_against_model(seed, 2_000, 50_000_000, 8);
        check_against_model(seed, 800, 10, 32);
    }
}

#[test]
fn ladder_queue_model_agreement_at_scale() {
    // One deep run with a large resident set (forces many re-bases).
    check_against_model(99, 60_000, 5_000_000, 16);
}

/// Build a jittered source → tap → sink sim and capture its trace.
fn capture_trace(seed: u64, secs: f64) -> Vec<u64> {
    let mut b = SimBuilder::new(MasterSeed::new(seed));
    let (_sink_handle, sink) = Sink::new();
    let sink_id = b.add_node(Box::new(sink));
    let (tap_handle, tap) = Tap::new(None, Some(sink_id));
    let tap_id = b.add_node(Box::new(tap));
    // Exponential inter-arrivals drive the per-node RNG stream, so any
    // engine-level reordering would desynchronize draws and show up in
    // the timestamps.
    b.add_node(Box::new(DistSource::new(
        tap_id,
        FlowId::PADDED,
        PacketKind::Payload,
        Box::new(Exponential::new(0.001).unwrap()),
        Box::new(Exponential::new(500.0).unwrap()),
    )));
    let mut sim = b.build().unwrap();
    sim.run_until(SimTime::from_secs_f64(secs));
    // Interleave a resumed segment to cover run_until boundaries.
    sim.run_for(SimDuration::from_secs_f64(secs));
    tap_handle.with_timestamps(|ts| ts.iter().map(|t| t.as_nanos()).collect())
}

#[test]
fn same_master_seed_replays_bit_identical_traces() {
    let a = capture_trace(0xDEAD_BEEF, 2.0);
    let b = capture_trace(0xDEAD_BEEF, 2.0);
    assert!(a.len() > 1_000, "trace long enough to be meaningful");
    assert_eq!(a, b, "identical MasterSeed must replay bit-for-bit");
}

#[test]
fn different_master_seeds_diverge() {
    let a = capture_trace(1, 1.0);
    let b = capture_trace(2, 1.0);
    assert_ne!(a, b);
}
