//! The checked-in exception file. Every entry carries a justification —
//! an allowlist line without one is a parse error, so "just silence it"
//! is not expressible.
//!
//! Format (pipe-separated, `#` comments, blank lines ignored):
//!
//! ```text
//! RULE_ID | path fragment | line fragment | justification
//! ```
//!
//! An entry allows a violation when all three match:
//! * `RULE_ID` equals the violation's rule;
//! * `path fragment` is a substring of the violation's workspace-relative
//!   path (so `crates/bench/` covers a whole crate);
//! * `line fragment` is a substring of the violation's trimmed source
//!   line, or `*` for any line.
//!
//! Matching on line *text* rather than line *numbers* keeps entries
//! stable across unrelated edits. Entries that match nothing are
//! themselves reported (`ALLOW_STALE`) so the file can only shrink when
//! the code it excuses goes away.

use crate::rules::Violation;

#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: String,
    pub path_frag: String,
    pub line_frag: String,
    pub justification: String,
    /// 1-based line in the allowlist file (for ALLOW_STALE reports).
    pub source_line: usize,
}

#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
    used: Vec<bool>,
}

impl Allowlist {
    /// Parse the allowlist text. Errors carry the offending line number.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
            if parts.len() != 4 {
                return Err(format!(
                    "allowlist line {}: expected `RULE | path | line-fragment | justification`",
                    i + 1
                ));
            }
            if parts[3].is_empty() {
                return Err(format!(
                    "allowlist line {}: empty justification — every exception must say why",
                    i + 1
                ));
            }
            entries.push(AllowEntry {
                rule: parts[0].to_string(),
                path_frag: parts[1].to_string(),
                line_frag: parts[2].to_string(),
                justification: parts[3].to_string(),
                source_line: i + 1,
            });
        }
        let used = vec![false; entries.len()];
        Ok(Allowlist { entries, used })
    }

    /// Does any entry cover `v`? Marks the matching entry as used.
    pub fn allows(&mut self, v: &Violation) -> bool {
        for (e, used) in self.entries.iter().zip(self.used.iter_mut()) {
            if e.rule == v.rule
                && v.file.contains(&e.path_frag)
                && (e.line_frag == "*" || v.line_text.contains(&e.line_frag))
            {
                *used = true;
                return true;
            }
        }
        false
    }

    /// Entries that matched nothing in this run.
    pub fn unused(&self) -> Vec<&AllowEntry> {
        self.entries
            .iter()
            .zip(&self.used)
            .filter(|(_, u)| !**u)
            .map(|(e, _)| e)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, file: &str, line_text: &str) -> Violation {
        Violation {
            file: file.into(),
            line: 1,
            rule,
            message: String::new(),
            line_text: line_text.into(),
        }
    }

    #[test]
    fn matches_on_rule_path_and_line_fragment() {
        let mut al = Allowlist::parse(
            "DET_WALLCLOCK | crates/bench/ | * | benches time things\n\
             RP_PANIC | equeue.rs | slab fits u32 | capacity invariant\n",
        )
        .unwrap();
        assert!(al.allows(&v(
            "DET_WALLCLOCK",
            "crates/bench/src/perf.rs",
            "Instant::now()"
        )));
        assert!(al.allows(&v(
            "RP_PANIC",
            "crates/sim/src/equeue.rs",
            "x.expect(\"slab fits u32 indices\")"
        )));
        assert!(!al.allows(&v("RP_PANIC", "crates/sim/src/engine.rs", "x.unwrap()")));
        assert!(!al.allows(&v(
            "DET_ENTROPY",
            "crates/bench/src/perf.rs",
            "thread_rng()"
        )));
        assert!(al.unused().is_empty());
    }

    #[test]
    fn unused_entries_are_reported() {
        let al = Allowlist::parse("NODE_RESET | nowhere.rs | * | obsolete\n").unwrap();
        assert_eq!(al.unused().len(), 1);
    }

    #[test]
    fn missing_justification_is_a_parse_error() {
        assert!(Allowlist::parse("RP_PANIC | a.rs | * |\n").is_err());
        assert!(Allowlist::parse("RP_PANIC | a.rs | *\n").is_err());
    }
}
