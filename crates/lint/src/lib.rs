//! # linkpad-lint
//!
//! Workspace static analysis for the invariants the compiler does not
//! check and the property tests only sample: bit-identical
//! reset/shard determinism, the `Node::reset` override contract,
//! `// SAFETY:` audits, run-path panic-freedom, and the `#[cold]`
//! outlining discipline on watchdog/fault helpers.
//!
//! Dependency-free by design (a hand-rolled tokenizer instead of `syn`):
//! the workspace builds offline, and the linter must not share a
//! dependency graph with the code it audits.
//!
//! Layout:
//! * [`tokenizer`] — the lightweight Rust lexer;
//! * [`rules`] — the rule implementations over one file;
//! * [`allowlist`] — the checked-in, justification-required exception
//!   file;
//! * this module — the workspace walker and the `check` driver the CLI
//!   and the self-tests share.
//!
//! See DESIGN.md §Static analysis for the rule catalog and the policy on
//! adding exceptions.

pub mod allowlist;
pub mod rules;
pub mod tokenizer;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use allowlist::Allowlist;
use rules::{FileContext, UnsafeSite, Violation};

/// Path of the allowlist, relative to the workspace root.
pub const ALLOWLIST_PATH: &str = "crates/lint/workspace.allow";
/// Path of the cold-fn list, relative to the workspace root.
pub const COLD_LIST_PATH: &str = "crates/lint/cold_fns.list";
/// Path of the generated unsafe inventory, relative to the workspace root.
pub const INVENTORY_PATH: &str = "crates/lint/UNSAFE_INVENTORY.md";

/// Files where `RP_PANIC` applies: the modules a million-flow sharded
/// run cannot afford to panic in (typed errors or documented infallible
/// patterns only).
pub const RUN_PATH_FILES: &[&str] = &[
    "crates/sim/src/engine.rs",
    "crates/sim/src/equeue.rs",
    "crates/workloads/src/shard.rs",
    "crates/workloads/src/scenario.rs",
];

/// Every `.rs` file the lint walks, as workspace-relative `/`-separated
/// paths, sorted. Covers all non-`compat` crates plus the facade crate's
/// `src`, `tests`, and `examples`; skips `target` and fixture corpora.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if name == "compat" || !entry.file_type()?.is_dir() {
                continue;
            }
            collect_rs(&entry.path(), root, &mut out)?;
        }
    }
    for top in ["src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let fname = entry.file_name();
        if entry.file_type()?.is_dir() {
            // `fixtures` holds deliberately-bad lint corpora; `target`
            // holds build output.
            if fname != "fixtures" && fname != "target" {
                collect_rs(&path, root, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Is this a crate `src/` file (as opposed to an integration test,
/// example, or bench fixture)? The determinism and node-reset rules only
/// apply here: integration tests and examples may time and poke freely.
fn is_library_source(rel: &str) -> bool {
    rel.starts_with("src/")
        || (rel.starts_with("crates/")
            && rel
                .splitn(3, '/')
                .nth(2)
                .is_some_and(|r| r.starts_with("src/")))
}

/// Parse `cold_fns.list`: `path | fn_name` per line, `#` comments.
pub fn parse_cold_list(text: &str) -> Result<BTreeMap<String, Vec<String>>, String> {
    let mut map: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(2, '|').map(str::trim);
        let (path, name) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        if path.is_empty() || name.is_empty() {
            return Err(format!(
                "cold list line {}: expected `path/to/file.rs | fn_name`",
                i + 1
            ));
        }
        map.entry(path.to_string())
            .or_default()
            .push(name.to_string());
    }
    Ok(map)
}

/// The full `check` result.
pub struct CheckReport {
    /// Violations not covered by the allowlist (including `ALLOW_STALE`
    /// and inventory-drift findings). Empty means the gate passes.
    pub violations: Vec<Violation>,
    /// How many raw findings the allowlist excused.
    pub allowed: usize,
    /// How many files were scanned.
    pub files: usize,
}

/// Run the whole workspace check rooted at `root`.
pub fn check_workspace(root: &Path) -> Result<CheckReport, String> {
    let allow_text = fs::read_to_string(root.join(ALLOWLIST_PATH))
        .map_err(|e| format!("{ALLOWLIST_PATH}: {e}"))?;
    let mut allow = Allowlist::parse(&allow_text)?;
    let cold_text = fs::read_to_string(root.join(COLD_LIST_PATH))
        .map_err(|e| format!("{COLD_LIST_PATH}: {e}"))?;
    let cold = parse_cold_list(&cold_text)?;

    let files = workspace_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut violations = Vec::new();
    let mut allowed = 0usize;
    for rel in &files {
        let src = fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
        let empty = Vec::new();
        let ctx = FileContext {
            rel_path: rel,
            determinism: is_library_source(rel),
            run_path: RUN_PATH_FILES.contains(&rel.as_str()),
            node_reset: is_library_source(rel),
            cold_fns: cold.get(rel).unwrap_or(&empty),
        };
        for v in rules::lint_file(&src, &ctx) {
            if allow.allows(&v) {
                allowed += 1;
            } else {
                violations.push(v);
            }
        }
    }

    // Cold-list entries pointing at files the walk never saw would
    // otherwise silently rot.
    for path in cold.keys() {
        if !files.iter().any(|f| f == path) {
            violations.push(Violation {
                file: COLD_LIST_PATH.to_string(),
                line: 1,
                rule: "COLD_ATTR",
                message: format!("cold list names `{path}`, which the walk did not find"),
                line_text: String::new(),
            });
        }
    }

    for e in allow.unused() {
        violations.push(Violation {
            file: ALLOWLIST_PATH.to_string(),
            line: e.source_line,
            rule: "ALLOW_STALE",
            message: format!(
                "allowlist entry `{} | {} | {}` matched nothing; remove it",
                e.rule, e.path_frag, e.line_frag
            ),
            line_text: String::new(),
        });
    }

    // The committed unsafe inventory must match a fresh scan.
    let fresh = render_inventory(root)?;
    match fs::read_to_string(root.join(INVENTORY_PATH)) {
        Ok(committed) if committed == fresh => {}
        Ok(_) | Err(_) => violations.push(Violation {
            file: INVENTORY_PATH.to_string(),
            line: 1,
            rule: "UNSAFE_SAFETY",
            message: "unsafe inventory is stale or missing; regenerate with \
                      `cargo run -p linkpad-lint -- inventory --write`"
                .to_string(),
            line_text: String::new(),
        }),
    }

    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(CheckReport {
        violations,
        allowed,
        files: files.len(),
    })
}

/// Scan the workspace for `unsafe` sites.
pub fn collect_inventory(root: &Path) -> Result<Vec<UnsafeSite>, String> {
    let files = workspace_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut sites = Vec::new();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
        sites.extend(rules::unsafe_inventory(&src, rel));
    }
    Ok(sites)
}

/// Render the inventory markdown exactly as committed at
/// [`INVENTORY_PATH`].
pub fn render_inventory(root: &Path) -> Result<String, String> {
    let sites = collect_inventory(root)?;
    let mut out = String::from(
        "# Unsafe inventory\n\n\
         Generated by `cargo run -p linkpad-lint -- inventory --write`.\n\
         `linkpad-lint check` fails when this file is out of date, so the\n\
         audit below is always current.\n\n",
    );
    if sites.is_empty() {
        out.push_str(
            "**No unsafe sites.** Every non-`compat` crate carries\n\
             `#![forbid(unsafe_code)]`; the slab-arena event queue and the\n\
             parallel harness are written in safe Rust. Any future `unsafe`\n\
             must appear here with a `// SAFETY:` comment (rule\n\
             `UNSAFE_SAFETY`).\n",
        );
    } else {
        out.push_str("| file | line | kind | `// SAFETY:` |\n|---|---|---|---|\n");
        for s in &sites {
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                s.file,
                s.line,
                s.kind,
                if s.documented { "yes" } else { "**missing**" }
            ));
        }
    }
    Ok(out)
}

/// Locate the workspace root: an explicit `--root`, else the lint
/// crate's own manifest dir walked up to the workspace `Cargo.toml`,
/// else the current directory.
pub fn find_root(explicit: Option<&str>) -> PathBuf {
    if let Some(r) = explicit {
        return PathBuf::from(r);
    }
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = start.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file()
            && fs::read_to_string(&manifest)
                .map(|t| t.contains("[workspace]"))
                .unwrap_or(false)
        {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_source_classification() {
        assert!(is_library_source("crates/sim/src/engine.rs"));
        assert!(is_library_source("crates/bench/src/bin/perf_baseline.rs"));
        assert!(is_library_source("src/lib.rs"));
        assert!(!is_library_source(
            "crates/workloads/tests/reset_determinism.rs"
        ));
        assert!(!is_library_source("tests/end_to_end_detection.rs"));
        assert!(!is_library_source("examples/quickstart.rs"));
    }

    #[test]
    fn cold_list_parses_and_rejects_garbage() {
        let map = parse_cold_list("# c\ncrates/sim/src/engine.rs | run_until_guarded\n").unwrap();
        assert_eq!(map["crates/sim/src/engine.rs"], vec!["run_until_guarded"]);
        assert!(parse_cold_list("no-pipe-here\n").is_err());
    }
}
