//! A lightweight Rust tokenizer — just enough lexical fidelity for the
//! lint rules, with none of `syn`'s dependency weight (the workspace
//! builds offline; see DESIGN.md §Offline builds).
//!
//! What it gets right, because the rules depend on it:
//!
//! * comments (line, block with nesting, doc) are captured per line and
//!   never produce code tokens — `// call .unwrap() here` cannot trip a
//!   panic rule;
//! * string/char/byte literals — including raw strings with arbitrary
//!   `#` fences — are opaque: `"HashMap"` in a message is not an
//!   identifier;
//! * lifetimes (`'a`) are distinguished from char literals (`'a'`), so
//!   a lifetime never desynchronizes the string machinery;
//! * every token carries its 1-based source line for reporting, and the
//!   tokenizer records which lines hold any code at all (the
//!   "immediately preceded by a comment" checks need this).
//!
//! What it deliberately ignores: operator gluing (`::` is two `:`
//! tokens), numeric literal grammar subtleties, and shebangs. The rules
//! match identifier/punct *sequences*, so none of that matters.

/// One lexical token. Keywords are ordinary identifiers; multi-char
/// operators arrive as consecutive single-char puncts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident(String),
    /// Single punctuation/operator character.
    Punct(char),
    /// String, raw-string, byte-string, or char literal (content dropped).
    Lit,
    /// Numeric literal (content dropped).
    Num,
    /// Lifetime such as `'a` (name dropped).
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

/// Tokenized source plus the per-line side tables the rules consume.
#[derive(Debug, Default)]
pub struct Tokenized {
    pub tokens: Vec<Token>,
    /// Concatenated comment text per 1-based line (a block comment
    /// spanning lines contributes to every line it covers).
    pub comment_on_line: Vec<Option<String>>,
    /// `true` for every 1-based line that holds at least one code token.
    pub code_on_line: Vec<bool>,
    /// Total number of lines.
    pub line_count: usize,
}

impl Tokenized {
    fn grow_to(&mut self, line: usize) {
        if self.comment_on_line.len() <= line {
            self.comment_on_line.resize(line + 1, None);
            self.code_on_line.resize(line + 1, false);
        }
        self.line_count = self.line_count.max(line);
    }

    fn push_token(&mut self, tok: Tok, line: usize) {
        self.grow_to(line);
        self.code_on_line[line] = true;
        self.tokens.push(Token { tok, line });
    }

    fn push_comment(&mut self, line: usize, text: &str) {
        self.grow_to(line);
        let slot = &mut self.comment_on_line[line];
        match slot {
            Some(existing) => {
                existing.push(' ');
                existing.push_str(text);
            }
            None => *slot = Some(text.to_string()),
        }
    }

    /// Is `line` (1-based) a pure comment line — comment present, no code?
    pub fn is_comment_only_line(&self, line: usize) -> bool {
        line < self.comment_on_line.len()
            && self.comment_on_line[line].is_some()
            && !self.code_on_line[line]
    }
}

/// Tokenize `src`. Never fails: unterminated constructs consume to EOF,
/// which is the most useful behavior for a linter (the compiler will
/// reject the file anyway; we still report what we saw before the error).
pub fn tokenize(src: &str) -> Tokenized {
    let b = src.as_bytes();
    let mut out = Tokenized::default();
    let mut i = 0usize;
    let mut line = 1usize;
    out.grow_to(1);

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                out.grow_to(line);
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.push_comment(line, src[start..i].trim_start_matches('/').trim());
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment; Rust block comments nest.
                let mut depth = 1usize;
                let start = i;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        let text = src[start..i].trim_matches(&['/', '*', ' '][..]);
                        out.push_comment(line, text);
                        line += 1;
                        out.grow_to(line);
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 1;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 1;
                    }
                    i += 1;
                }
                let tail_start = src[..i].rfind('\n').map_or(start, |n| n + 1).max(start);
                out.push_comment(line, src[tail_start..i].trim_matches(&['/', '*', ' '][..]));
            }
            b'"' => {
                let tok_line = line;
                i = consume_string(b, i, &mut line);
                out.push_token(Tok::Lit, tok_line);
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`, `'\''`).
                let tok_line = line;
                let next = b.get(i + 1).copied();
                let is_char = match next {
                    Some(b'\\') => true,
                    Some(n) if n != b'\'' => b.get(i + 2).copied() == Some(b'\''),
                    _ => false,
                };
                if is_char {
                    i += 1; // past opening quote
                    if b.get(i).copied() == Some(b'\\') {
                        i += 2; // escape + escaped char (enough for \', \\, \u{..} start)
                        while i < b.len() && b[i] != b'\'' {
                            i += 1;
                        }
                    } else {
                        i += 1;
                    }
                    i += 1; // closing quote (or EOF-safe overshoot)
                    out.push_token(Tok::Lit, tok_line);
                } else {
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    out.push_token(Tok::Lifetime, tok_line);
                }
            }
            c if c.is_ascii_digit() => {
                let tok_line = line;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                    && !(b[i] == b'.' && b.get(i + 1).copied() == Some(b'.'))
                {
                    i += 1;
                }
                out.push_token(Tok::Num, tok_line);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                // String-literal prefixes: r"", r#""#, b"", br"", rb is
                // not a thing but br# is. A prefix word immediately
                // followed by `"` or `#…"` starts a literal, not an ident.
                let next = b.get(i).copied();
                let starts_raw =
                    matches!(word, "r" | "br") && (next == Some(b'"') || next == Some(b'#'));
                let starts_plain = word == "b" && next == Some(b'"');
                if starts_raw {
                    let tok_line = line;
                    i = consume_raw_string(b, i, &mut line);
                    out.push_token(Tok::Lit, tok_line);
                } else if starts_plain {
                    let tok_line = line;
                    i = consume_string(b, i, &mut line);
                    out.push_token(Tok::Lit, tok_line);
                } else {
                    out.push_token(Tok::Ident(word.to_string()), line);
                }
            }
            _ => {
                out.push_token(Tok::Punct(c as char), line);
                i += 1;
            }
        }
    }
    out
}

/// Consume a plain (escaped) string starting at the `"` at `b[i]`.
/// Returns the index past the closing quote.
fn consume_string(b: &[u8], mut i: usize, line: &mut usize) -> usize {
    debug_assert_eq!(b[i], b'"');
    i += 1;
    while i < b.len() {
        match b[i] {
            // An escaped newline (line continuation) still ends a
            // source line — without counting it, every token after a
            // continued string reports a line number short by one and
            // allowlist line-fragment matching silently misses.
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consume a raw string whose `#` fence starts at `b[i]` (just past the
/// `r`/`br` prefix). Returns the index past the closing fence.
fn consume_raw_string(b: &[u8], mut i: usize, line: &mut usize) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
    }
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(t: &Tokenized) -> Vec<&str> {
        t.tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_are_opaque() {
        let t = tokenize(r#"let x = "HashMap::new() .unwrap()"; call();"#);
        assert!(!idents(&t).contains(&"HashMap"));
        assert!(!idents(&t).contains(&"unwrap"));
        assert!(idents(&t).contains(&"call"));
    }

    #[test]
    fn raw_strings_with_fences_are_opaque() {
        let src = "let x = r#\"quote \" inside, unsafe { } and HashMap\"#; after();";
        let t = tokenize(src);
        assert!(!idents(&t).contains(&"unsafe"));
        assert!(!idents(&t).contains(&"HashMap"));
        assert!(idents(&t).contains(&"after"));
    }

    #[test]
    fn double_fence_raw_string_needs_both_hashes_to_close() {
        let src = "let x = r##\"one \"# still inside\"##; done();";
        let t = tokenize(src);
        assert!(!idents(&t).contains(&"still"));
        assert!(idents(&t).contains(&"done"));
    }

    #[test]
    fn byte_strings_are_opaque() {
        let t = tokenize("let x = b\"Instant::now()\"; let y = br\"thread_rng\"; after();");
        assert!(!idents(&t).contains(&"Instant"));
        assert!(!idents(&t).contains(&"thread_rng"));
        assert!(idents(&t).contains(&"after"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unwrap() */ still comment HashMap */ real();";
        let t = tokenize(src);
        assert!(!idents(&t).contains(&"HashMap"));
        assert!(!idents(&t).contains(&"unwrap"));
        assert_eq!(idents(&t), vec!["real"]);
    }

    #[test]
    fn line_comments_capture_text_and_lines() {
        let src = "// SAFETY: fine\nunsafe { body() }\n";
        let t = tokenize(src);
        assert!(t.is_comment_only_line(1));
        assert!(!t.is_comment_only_line(2));
        assert!(t.comment_on_line[1].as_deref().unwrap().contains("SAFETY:"));
        let unsafe_tok = t
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("unsafe".into()))
            .unwrap();
        assert_eq!(unsafe_tok.line, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let t = tokenize(src);
        let lifetimes = t.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = t.tokens.iter().filter(|t| t.tok == Tok::Lit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
        assert!(idents(&t).contains(&"str"));
    }

    #[test]
    fn escaped_quote_char_literal_does_not_derail() {
        let src = "let q = '\\''; let s = \"x\"; tail();";
        let t = tokenize(src);
        assert!(idents(&t).contains(&"tail"));
    }

    #[test]
    fn string_line_continuation_advances_lines() {
        // `\` + newline inside a string is a line continuation: the
        // literal stays one token, but the *file* gained a line.
        let src = "let s = \"a\\\n b\\\n c\";\nmarker();";
        let t = tokenize(src);
        let m = t
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("marker".into()))
            .unwrap();
        assert_eq!(m.line, 4);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let src = "let s = \"line1\nline2\";\nmarker();";
        let t = tokenize(src);
        let m = t
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("marker".into()))
            .unwrap();
        assert_eq!(m.line, 3);
    }
}
