//! CLI for `linkpad-lint`. Two modes, no `--fix`:
//!
//! * `check` — walk the workspace, apply the allowlist, print every
//!   violation as `file:line · RULE_ID · message`, exit 1 if any. This
//!   is the CI gate.
//! * `inventory [--write]` — print the generated unsafe inventory, or
//!   rewrite `crates/lint/UNSAFE_INVENTORY.md` in place.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/configuration error.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = None;
    let mut root_arg = None;
    let mut write = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "inventory" if mode.is_none() => mode = Some(a.clone()),
            "--root" => match it.next() {
                Some(r) => root_arg = Some(r.clone()),
                None => return usage("--root needs a path"),
            },
            "--write" => write = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let Some(mode) = mode else {
        return usage("expected a mode");
    };
    let root = linkpad_lint::find_root(root_arg.as_deref());

    match mode.as_str() {
        "check" => match linkpad_lint::check_workspace(&root) {
            Ok(report) => {
                for v in &report.violations {
                    println!("{}:{} · {} · {}", v.file, v.line, v.rule, v.message);
                }
                println!(
                    "linkpad-lint: {} violation(s), {} allowlisted, {} files scanned",
                    report.violations.len(),
                    report.allowed,
                    report.files
                );
                if report.violations.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => config_error(&e),
        },
        "inventory" => match linkpad_lint::render_inventory(&root) {
            Ok(text) => {
                if write {
                    let path = root.join(linkpad_lint::INVENTORY_PATH);
                    if let Err(e) = std::fs::write(&path, &text) {
                        return config_error(&format!("{}: {e}", path.display()));
                    }
                    println!("wrote {}", linkpad_lint::INVENTORY_PATH);
                } else {
                    print!("{text}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => config_error(&e),
        },
        _ => unreachable!("mode is validated above"),
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!("linkpad-lint: {why}");
    eprintln!("usage: linkpad-lint <check|inventory> [--root DIR] [--write]");
    ExitCode::from(2)
}

fn config_error(why: &str) -> ExitCode {
    eprintln!("linkpad-lint: {why}");
    ExitCode::from(2)
}
