//! The lint rules. Each rule walks the token stream from
//! [`crate::tokenizer`] plus a little derived structure (brace matching,
//! `#[cfg(test)]` regions) and reports [`Violation`]s.
//!
//! Rule catalog (see DESIGN.md §Static analysis for the invariants each
//! one freezes):
//!
//! | id             | family        | what it bans / requires            |
//! |----------------|---------------|------------------------------------|
//! | `DET_UNORDERED`| determinism   | `HashMap`/`HashSet`/`RandomState`  |
//! | `DET_WALLCLOCK`| determinism   | `Instant`/`SystemTime`             |
//! | `DET_ENTROPY`  | determinism   | `thread_rng`/`OsRng`/`from_entropy`/`getrandom` |
//! | `NODE_RESET`   | node-reset    | `impl Node for T` without `fn reset` |
//! | `UNSAFE_SAFETY`| unsafe-audit  | `unsafe` without a `// SAFETY:` comment |
//! | `RP_PANIC`     | run-path-panic| `.unwrap()`/`.expect(`/`panic!`/`unreachable!` in run-path files |
//! | `COLD_ATTR`    | cold-path     | cold-listed fns missing `#[cold]`  |
//!
//! All rules skip `#[cfg(test)]` / `#[test]` items (`UNSAFE_SAFETY` is
//! the exception: unsafe code in tests is audited too).

use crate::tokenizer::{tokenize, Tok, Token, Tokenized};

/// One reported finding, formatted by the CLI as
/// `file:line · RULE_ID · message`.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
    /// Trimmed source line text — the allowlist matches substrings of
    /// this, so entries survive line-number drift.
    pub line_text: String,
}

/// Per-file rule scoping, decided by the walker (or a test) from the
/// file's path.
#[derive(Debug, Default)]
pub struct FileContext<'a> {
    /// Workspace-relative path, used in reports and allowlist matching.
    pub rel_path: &'a str,
    /// Apply the `DET_*` determinism rules.
    pub determinism: bool,
    /// Apply `RP_PANIC` (designated run-path modules only).
    pub run_path: bool,
    /// Apply `NODE_RESET`.
    pub node_reset: bool,
    /// Function names in this file that must carry `#[cold]`.
    pub cold_fns: &'a [String],
}

/// One `unsafe` site for the generated inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    pub file: String,
    pub line: usize,
    /// `"unsafe block"`, `"unsafe fn"`, `"unsafe impl"`, …
    pub kind: String,
    /// Whether a `// SAFETY:` comment immediately precedes it.
    pub documented: bool,
}

/// Token-stream structure shared by the rules: bracket matching and
/// `#[cfg(test)]`-item spans.
struct Analysis<'a> {
    toks: &'a [Token],
    tz: &'a Tokenized,
    lines: Vec<&'a str>,
    /// open-index → close-index for `{}`, `[]`, `()` jointly.
    match_fwd: Vec<usize>,
    /// close-index → open-index.
    match_back: Vec<usize>,
    /// Sorted, possibly overlapping token-index spans of test-gated items.
    test_spans: Vec<(usize, usize)>,
}

impl<'a> Analysis<'a> {
    fn new(src: &'a str, tz: &'a Tokenized) -> Self {
        let toks = &tz.tokens[..];
        let n = toks.len();
        let mut match_fwd = vec![usize::MAX; n];
        let mut match_back = vec![usize::MAX; n];
        let mut stack: Vec<(char, usize)> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            match t.tok {
                Tok::Punct(c @ ('{' | '[' | '(')) => stack.push((c, i)),
                Tok::Punct(c @ ('}' | ']' | ')')) => {
                    let want = match c {
                        '}' => '{',
                        ']' => '[',
                        _ => '(',
                    };
                    // Pop to the nearest matching opener; tolerate
                    // imbalance (linter, not parser).
                    while let Some((open_c, open_i)) = stack.pop() {
                        if open_c == want {
                            match_fwd[open_i] = i;
                            match_back[i] = open_i;
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        let mut a = Analysis {
            toks,
            tz,
            lines: src.lines().collect(),
            match_fwd,
            match_back,
            test_spans: Vec::new(),
        };
        a.find_test_spans();
        a
    }

    fn ident(&self, i: usize) -> Option<&str> {
        match self.toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, i: usize) -> Option<char> {
        match self.toks.get(i).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    fn line_text(&self, line: usize) -> String {
        self.lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Record the token span of every item gated behind `#[test]` or a
    /// `#[cfg(…)]` attr that enables `test` (but not `#[cfg(not(test))]`
    /// and not `#[cfg_attr(test, …)]`, which don't gate compilation on
    /// test builds the same way).
    fn find_test_spans(&mut self) {
        let n = self.toks.len();
        let mut i = 0;
        while i + 1 < n {
            if self.punct(i) == Some('#') && self.punct(i + 1) == Some('[') {
                let close = self.match_fwd[i + 1];
                if close == usize::MAX {
                    i += 1;
                    continue;
                }
                let idents: Vec<&str> = (i + 2..close).filter_map(|k| self.ident(k)).collect();
                let is_test = idents.as_slice() == ["test"]
                    || (idents.first() == Some(&"cfg")
                        && idents.contains(&"test")
                        && !idents.contains(&"not"));
                if is_test {
                    if let Some(end) = self.item_end_after_attrs(close + 1) {
                        self.test_spans.push((i, end));
                        i = close + 1;
                        continue;
                    }
                }
                i = close + 1;
            } else {
                i += 1;
            }
        }
    }

    /// Given the token index just past an attribute, skip any further
    /// attributes and return the index of the item's final token (its
    /// closing `}` or terminating `;`).
    fn item_end_after_attrs(&self, mut k: usize) -> Option<usize> {
        let n = self.toks.len();
        // Skip stacked attributes: #[…] #[…] item
        while k + 1 < n && self.punct(k) == Some('#') && self.punct(k + 1) == Some('[') {
            let close = self.match_fwd[k + 1];
            if close == usize::MAX {
                return None;
            }
            k = close + 1;
        }
        // The item runs to its first body `{ … }` or, for brace-less
        // items (`use …;`, `type …;`), to the terminating `;`.
        while k < n {
            match self.punct(k) {
                Some(';') => return Some(k),
                Some('{') => {
                    let close = self.match_fwd[k];
                    return if close == usize::MAX {
                        None
                    } else {
                        Some(close)
                    };
                }
                Some('(') | Some('[') => {
                    // Balanced group in a signature (params, attr-ish);
                    // skip it whole so a `;` or `{` inside doesn't fool us.
                    let close = self.match_fwd[k];
                    if close == usize::MAX {
                        return None;
                    }
                    k = close + 1;
                }
                _ => k += 1,
            }
        }
        None
    }

    fn in_test(&self, tok_idx: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(a, b)| a <= tok_idx && tok_idx <= b)
    }

    /// Does a `// SAFETY:` (or `/* SAFETY: */`) comment immediately
    /// precede the token at `tok_idx`? Accepted positions: a comment on
    /// the same line, or a run of comment-only lines directly above.
    fn has_preceding_safety_comment(&self, tok_idx: usize) -> bool {
        let line = self.toks[tok_idx].line;
        if let Some(Some(c)) = self.tz.comment_on_line.get(line) {
            if c.contains("SAFETY:") {
                return true;
            }
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && self.tz.is_comment_only_line(l) {
            if self.tz.comment_on_line[l]
                .as_deref()
                .is_some_and(|c| c.contains("SAFETY:"))
            {
                return true;
            }
            l -= 1;
        }
        false
    }
}

/// Run every applicable rule over one file.
pub fn lint_file(src: &str, ctx: &FileContext<'_>) -> Vec<Violation> {
    let tz = tokenize(src);
    let a = Analysis::new(src, &tz);
    let mut out = Vec::new();

    if ctx.determinism {
        determinism_rules(&a, ctx, &mut out);
    }
    if ctx.node_reset {
        node_reset_rule(&a, ctx, &mut out);
    }
    unsafe_safety_rule(&a, ctx, &mut out);
    if ctx.run_path {
        run_path_panic_rule(&a, ctx, &mut out);
    }
    cold_attr_rule(&a, ctx, &mut out);

    out.sort_by(|x, y| (x.line, x.rule).cmp(&(y.line, y.rule)));
    out
}

fn push(
    out: &mut Vec<Violation>,
    a: &Analysis,
    ctx: &FileContext,
    line: usize,
    rule: &'static str,
    message: String,
) {
    out.push(Violation {
        file: ctx.rel_path.to_string(),
        line,
        rule,
        message,
        line_text: a.line_text(line),
    });
}

/// `DET_*`: identifiers whose mere presence breaks the bit-identical
/// reset/shard determinism contract. Bans the *type or function name*
/// wherever it appears (including `use` lines) — an imported hazard is
/// a hazard.
fn determinism_rules(a: &Analysis, ctx: &FileContext, out: &mut Vec<Violation>) {
    for (i, t) in a.toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        let (rule, why): (&'static str, &str) = match name.as_str() {
            "HashMap" | "HashSet" => (
                "DET_UNORDERED",
                "unseeded iteration order; use BTreeMap/BTreeSet/Vec",
            ),
            "RandomState" => ("DET_UNORDERED", "per-process random hash seed"),
            "Instant" | "SystemTime" => (
                "DET_WALLCLOCK",
                "wall-clock read in sim logic; derive time from SimTime",
            ),
            "thread_rng" | "OsRng" | "from_entropy" | "getrandom" => (
                "DET_ENTROPY",
                "OS entropy; derive all randomness from the master seed",
            ),
            _ => continue,
        };
        if a.in_test(i) {
            continue;
        }
        push(out, a, ctx, t.line, rule, format!("`{name}`: {why}"));
    }
}

/// `NODE_RESET`: every non-test `impl Node for T` block must override
/// `fn reset`, so no node type silently inherits the no-op default and
/// breaks `reset(seed) ≡ rebuild`.
fn node_reset_rule(a: &Analysis, ctx: &FileContext, out: &mut Vec<Violation>) {
    let n = a.toks.len();
    for i in 0..n {
        if a.ident(i) != Some("impl") || a.in_test(i) {
            continue;
        }
        // Find the impl body `{`; the header is everything before it.
        let mut body_open = None;
        for k in i + 1..n {
            if a.punct(k) == Some('{') {
                body_open = Some(k);
                break;
            }
            if a.punct(k) == Some(';') || a.ident(k) == Some("impl") {
                break; // `impl Trait for T;`-style or a mis-scan; bail.
            }
        }
        let Some(open) = body_open else { continue };
        let close = a.match_fwd[open];
        if close == usize::MAX {
            continue;
        }
        // Header must read `… Node for T …`.
        let mut ty = None;
        for k in i + 1..open {
            if a.ident(k) == Some("Node") && a.ident(k + 1) == Some("for") {
                ty = a.ident(k + 2);
                break;
            }
        }
        let Some(ty) = ty else { continue };
        let has_reset =
            (open..close).any(|k| a.ident(k) == Some("fn") && a.ident(k + 1) == Some("reset"));
        if !has_reset {
            push(
                out,
                a,
                ctx,
                a.toks[i].line,
                "NODE_RESET",
                format!(
                    "`impl Node for {ty}` has no `fn reset` override; \
                     the no-op default breaks reset(seed) ≡ rebuild"
                ),
            );
        }
    }
}

/// `UNSAFE_SAFETY`: every `unsafe` keyword needs an immediately
/// preceding `// SAFETY:` comment. Applied everywhere, tests included —
/// unsafe code in a test harness still needs its obligation written
/// down.
fn unsafe_safety_rule(a: &Analysis, ctx: &FileContext, out: &mut Vec<Violation>) {
    for (i, kind) in unsafe_sites(a) {
        if !a.has_preceding_safety_comment(i) {
            push(
                out,
                a,
                ctx,
                a.toks[i].line,
                "UNSAFE_SAFETY",
                format!("{kind} without an immediately preceding `// SAFETY:` comment"),
            );
        }
    }
}

/// All `unsafe` keyword sites with a human-readable kind. `forbid`/
/// `allow` attribute mentions (`unsafe_code`) tokenize as the ident
/// `unsafe_code`, not `unsafe`, so they never appear here.
fn unsafe_sites(a: &Analysis) -> Vec<(usize, String)> {
    let mut sites = Vec::new();
    for i in 0..a.toks.len() {
        if a.ident(i) != Some("unsafe") {
            continue;
        }
        let kind = match (a.ident(i + 1), a.punct(i + 1)) {
            (Some("fn"), _) => "unsafe fn",
            (Some("impl"), _) => "unsafe impl",
            (Some("trait"), _) => "unsafe trait",
            (Some("extern"), _) => "unsafe extern",
            (_, Some('{')) => "unsafe block",
            _ => "unsafe",
        };
        sites.push((i, kind.to_string()));
    }
    sites
}

/// The generated unsafe inventory for one file.
pub fn unsafe_inventory(src: &str, rel_path: &str) -> Vec<UnsafeSite> {
    let tz = tokenize(src);
    let a = Analysis::new(src, &tz);
    unsafe_sites(&a)
        .into_iter()
        .map(|(i, kind)| UnsafeSite {
            file: rel_path.to_string(),
            line: a.toks[i].line,
            kind,
            documented: a.has_preceding_safety_comment(i),
        })
        .collect()
}

/// `RP_PANIC`: no `.unwrap()` / `.expect(` / `panic!` / `unreachable!`
/// outside `#[cfg(test)]` in the designated run-path modules. Typed
/// errors (`ScenarioError`, `ShardError`) or allowlisted documented
/// infallible patterns only.
fn run_path_panic_rule(a: &Analysis, ctx: &FileContext, out: &mut Vec<Violation>) {
    for i in 0..a.toks.len() {
        let Some(name) = a.ident(i) else { continue };
        let hit = match name {
            "unwrap" | "expect" => {
                i > 0 && a.punct(i - 1) == Some('.') && a.punct(i + 1) == Some('(')
            }
            "panic" | "unreachable" => a.punct(i + 1) == Some('!'),
            _ => false,
        };
        if !hit || a.in_test(i) {
            continue;
        }
        let display = match name {
            "unwrap" => ".unwrap()".to_string(),
            "expect" => ".expect(..)".to_string(),
            other => format!("{other}!"),
        };
        push(
            out,
            a,
            ctx,
            a.toks[i].line,
            "RP_PANIC",
            format!("{display} on a run path; return a typed error instead"),
        );
    }
}

/// `COLD_ATTR`: every function named in the cold list for this file must
/// exist and carry `#[cold]` — freezing the PR-5 codegen discipline
/// (watchdog/fault helpers outlined off `run_until`'s hot loop). A
/// listed name that no longer exists is reported too, so the list can't
/// rot.
fn cold_attr_rule(a: &Analysis, ctx: &FileContext, out: &mut Vec<Violation>) {
    'names: for name in ctx.cold_fns {
        for i in 0..a.toks.len() {
            if a.ident(i) == Some("fn") && a.ident(i + 1) == Some(name.as_str()) {
                if !fn_has_cold_attr(a, i) {
                    push(
                        out,
                        a,
                        ctx,
                        a.toks[i].line,
                        "COLD_ATTR",
                        format!("cold-listed fn `{name}` is missing `#[cold]`"),
                    );
                }
                continue 'names;
            }
        }
        push(
            out,
            a,
            ctx,
            1,
            "COLD_ATTR",
            format!("cold-listed fn `{name}` not found in this file (stale cold_fns.list entry)"),
        );
    }
}

/// Walk backwards from the `fn` token at `fn_idx` over qualifiers
/// (`pub(crate)`, `unsafe`, `const`, …) and attribute groups, looking
/// for `#[cold]`.
fn fn_has_cold_attr(a: &Analysis, fn_idx: usize) -> bool {
    let mut k = fn_idx;
    while k > 0 {
        k -= 1;
        match &a.toks[k].tok {
            Tok::Ident(s)
                if matches!(
                    s.as_str(),
                    "pub"
                        | "crate"
                        | "in"
                        | "self"
                        | "super"
                        | "unsafe"
                        | "const"
                        | "async"
                        | "extern"
                ) => {}
            Tok::Punct('(') => {}
            Tok::Punct(')') => {
                // pub(crate) / pub(in path): jump to the opening paren.
                let open = a.match_back[k];
                if open == usize::MAX {
                    return false;
                }
                k = open;
            }
            Tok::Punct(']') => {
                let open = a.match_back[k];
                if open == usize::MAX || open == 0 {
                    return false;
                }
                // Outer attr `#[…]` (an inner `#![…]` would have `!`
                // before the bracket — that one belongs to the module,
                // not this fn, so stop there).
                if a.punct(open - 1) != Some('#') {
                    return false;
                }
                if (open + 1..k).any(|j| a.ident(j) == Some("cold")) {
                    return true;
                }
                k = open - 1;
            }
            Tok::Lit => {} // extern "C"
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_all(path: &str) -> FileContext<'_> {
        FileContext {
            rel_path: path,
            determinism: true,
            run_path: true,
            node_reset: true,
            cold_fns: &[],
        }
    }

    fn rules_fired(src: &str, ctx: &FileContext) -> Vec<&'static str> {
        lint_file(src, ctx).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn cfg_test_scoping_suppresses_all_token_rules() {
        let src = r#"
            pub fn run() -> u32 { 1 }
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() {
                    let x: Option<u32> = None;
                    x.unwrap();
                    let _ = std::time::Instant::now();
                    panic!("fine in tests");
                }
            }
        "#;
        assert!(rules_fired(src, &ctx_all("x.rs")).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = r#"
            #[cfg(not(test))]
            fn prod() { let _ = std::time::Instant::now(); }
        "#;
        assert_eq!(rules_fired(src, &ctx_all("x.rs")), vec!["DET_WALLCLOCK"]);
    }

    #[test]
    fn cfg_test_single_fn_scopes_only_that_item() {
        let src = r#"
            #[cfg(test)]
            fn helper() { let _ = std::time::Instant::now(); }
            fn prod() { let _ = std::time::SystemTime::now(); }
        "#;
        let fired = rules_fired(src, &ctx_all("x.rs"));
        assert_eq!(fired, vec!["DET_WALLCLOCK"]);
        let v = &lint_file(src, &ctx_all("x.rs"))[0];
        assert!(v.message.contains("SystemTime"), "{}", v.message);
    }

    #[test]
    fn unwrap_or_variants_do_not_trip_rp_panic() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }";
        assert!(rules_fired(src, &ctx_all("x.rs")).is_empty());
    }

    #[test]
    fn cold_rule_flags_missing_attr_and_stale_entry() {
        let cold = vec!["guarded".to_string(), "gone".to_string()];
        let ctx = FileContext {
            rel_path: "x.rs",
            cold_fns: &cold,
            ..Default::default()
        };
        let src = "fn guarded() {}";
        let v = lint_file(src, &ctx);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "COLD_ATTR"));
        assert!(v.iter().any(|v| v.message.contains("missing `#[cold]`")));
        assert!(v.iter().any(|v| v.message.contains("stale")));
    }

    #[test]
    fn cold_attr_found_through_qualifiers_and_other_attrs() {
        let cold = vec!["guarded".to_string()];
        let ctx = FileContext {
            rel_path: "x.rs",
            cold_fns: &cold,
            ..Default::default()
        };
        let src = "#[cold]\n#[inline(never)]\npub(crate) fn guarded() {}";
        assert!(lint_file(src, &ctx).is_empty());
    }

    #[test]
    fn safety_comment_same_line_or_above_satisfies_unsafe_audit() {
        let above = "// SAFETY: the slab index is in bounds by construction.\nunsafe { go() }";
        let ctx = ctx_all("x.rs");
        assert!(rules_fired(above, &ctx).is_empty());
        let inline = "unsafe { /* SAFETY: checked */ go() }";
        assert!(rules_fired(inline, &ctx).is_empty());
        let missing = "fn f() { unsafe { go() } }";
        assert_eq!(rules_fired(missing, &ctx), vec!["UNSAFE_SAFETY"]);
        // A trailing comment on the previous *code* line does not count.
        let trailing = "let x = 1; // SAFETY: not really attached\nunsafe { go() }";
        assert_eq!(rules_fired(trailing, &ctx), vec!["UNSAFE_SAFETY"]);
    }

    #[test]
    fn node_impl_with_reset_passes_without_fails() {
        let good = "impl Node for Tap { fn on_timer(&mut self) {} fn reset(&mut self) {} }";
        assert!(rules_fired(good, &ctx_all("x.rs")).is_empty());
        let bad = "impl Node for Tap { fn on_timer(&mut self) {} }";
        assert_eq!(rules_fired(bad, &ctx_all("x.rs")), vec!["NODE_RESET"]);
        // Other traits named similarly don't match.
        let other = "impl NodeExt for Tap { }";
        assert!(rules_fired(other, &ctx_all("x.rs")).is_empty());
        // Generic impl headers still match.
        let generic = "impl<R: Rng> Node for Gate<R> { fn reset(&mut self) {} }";
        assert!(rules_fired(generic, &ctx_all("x.rs")).is_empty());
    }

    #[test]
    fn inventory_reports_documentation_state() {
        let src = "// SAFETY: fine\nunsafe fn a() {}\nfn b() { unsafe { c() } }";
        let inv = unsafe_inventory(src, "x.rs");
        assert_eq!(inv.len(), 2);
        assert!(inv[0].documented && inv[0].kind == "unsafe fn");
        assert!(!inv[1].documented && inv[1].kind == "unsafe block");
    }
}
