//! The lint's self-test: every rule family must fire on its known-bad
//! fixture and stay silent on its known-good twin, and the real
//! workspace must pass `check` with zero violations (the same gate CI
//! runs, so `cargo test` alone catches a lint regression or a new
//! workspace violation).

use std::path::Path;

use linkpad_lint::rules::{lint_file, FileContext};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Lint a fixture as if it were deterministic run-path library source.
fn lint_fixture(name: &str, cold: &[String]) -> Vec<(String, usize, String)> {
    let src = fixture(name);
    let ctx = FileContext {
        rel_path: name,
        determinism: true,
        run_path: true,
        node_reset: true,
        cold_fns: cold,
    };
    lint_file(&src, &ctx)
        .into_iter()
        .map(|v| (v.rule.to_string(), v.line, v.message))
        .collect()
}

fn rules_of(v: &[(String, usize, String)]) -> Vec<&str> {
    v.iter().map(|(r, _, _)| r.as_str()).collect()
}

#[test]
fn determinism_bad_trips_all_three_det_rules() {
    let v = lint_fixture("determinism_bad.rs", &[]);
    let rules = rules_of(&v);
    assert!(rules.contains(&"DET_UNORDERED"), "{v:?}");
    assert!(rules.contains(&"DET_WALLCLOCK"), "{v:?}");
    assert!(rules.contains(&"DET_ENTROPY"), "{v:?}");
    // The #[cfg(test)] module at the bottom must contribute nothing:
    // every reported line precedes it.
    let src = fixture("determinism_bad.rs");
    let test_mod_line = src
        .lines()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap()
        + 1;
    assert!(
        v.iter().all(|(_, line, _)| *line < test_mod_line),
        "a violation leaked out of the cfg(test) region: {v:?}"
    );
}

#[test]
fn determinism_good_is_clean() {
    assert!(lint_fixture("determinism_good.rs", &[]).is_empty());
}

#[test]
fn obs_shaped_wallclock_fires_det_wallclock_outside_tests() {
    // Telemetry code is exactly where a wall clock looks innocent and
    // isn't: the rule must fire on both host-clock reads in the bad
    // fixture (and on nothing else), and the sim-time twin must be
    // clean — the shape `linkpad-obs`'s metrics/profile modules follow.
    // Four hits: the braced `use` contributes one per banned name, the
    // two bodies one each.
    let v = lint_fixture("obs_wallclock_bad.rs", &[]);
    assert_eq!(rules_of(&v), vec!["DET_WALLCLOCK"; 4], "{v:?}");
    let text = v
        .iter()
        .map(|(_, _, m)| m.clone())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("Instant"), "{text}");
    assert!(text.contains("SystemTime"), "{text}");
    let src = fixture("obs_wallclock_bad.rs");
    let test_mod_line = src
        .lines()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap()
        + 1;
    assert!(
        v.iter().all(|(_, line, _)| *line < test_mod_line),
        "a violation leaked out of the cfg(test) region: {v:?}"
    );
    assert!(lint_fixture("obs_wallclock_good.rs", &[]).is_empty());
}

#[test]
fn trace_shaped_wallclock_fires_det_wallclock_outside_tests() {
    // The causal trace recorder is the newest place a host clock could
    // sneak into deterministic state: three hits in the bad fixture
    // (the `use`, the record stamp, the epoch-named report) and nothing
    // else; the sim-time twin — the shape `linkpad_obs::trace` actually
    // follows — must be clean.
    let v = lint_fixture("trace_wallclock_bad.rs", &[]);
    assert_eq!(rules_of(&v), vec!["DET_WALLCLOCK"; 3], "{v:?}");
    let text = v
        .iter()
        .map(|(_, _, m)| m.clone())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("Instant"), "{text}");
    assert!(text.contains("SystemTime"), "{text}");
    let src = fixture("trace_wallclock_bad.rs");
    let test_mod_line = src
        .lines()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap()
        + 1;
    assert!(
        v.iter().all(|(_, line, _)| *line < test_mod_line),
        "a violation leaked out of the cfg(test) region: {v:?}"
    );
    assert!(lint_fixture("trace_wallclock_good.rs", &[]).is_empty());
}

#[test]
fn node_reset_bad_fires_once_with_type_name() {
    let v = lint_fixture("node_reset_bad.rs", &[]);
    assert_eq!(rules_of(&v), vec!["NODE_RESET"]);
    assert!(v[0].2.contains("Forgetful"), "{v:?}");
}

#[test]
fn node_reset_good_is_clean_including_test_probe() {
    assert!(lint_fixture("node_reset_good.rs", &[]).is_empty());
}

#[test]
fn unsafe_bad_fires_on_block_and_fn() {
    let v = lint_fixture("unsafe_bad.rs", &[]);
    assert_eq!(rules_of(&v), vec!["UNSAFE_SAFETY", "UNSAFE_SAFETY"]);
    assert!(v[0].2.contains("unsafe block"), "{v:?}");
    assert!(v[1].2.contains("unsafe fn"), "{v:?}");
}

#[test]
fn unsafe_good_is_clean() {
    assert!(lint_fixture("unsafe_good.rs", &[]).is_empty());
}

#[test]
fn unsafe_inventory_reflects_fixture_sites() {
    let inv = linkpad_lint::rules::unsafe_inventory(&fixture("unsafe_bad.rs"), "unsafe_bad.rs");
    assert_eq!(inv.len(), 2);
    assert!(inv.iter().all(|s| !s.documented));
    let inv = linkpad_lint::rules::unsafe_inventory(&fixture("unsafe_good.rs"), "unsafe_good.rs");
    assert_eq!(inv.len(), 3);
    assert!(inv.iter().all(|s| s.documented));
}

#[test]
fn rp_panic_bad_fires_on_all_four_forms() {
    let v = lint_fixture("rp_panic_bad.rs", &[]);
    assert_eq!(rules_of(&v), vec!["RP_PANIC"; 4]);
    let text = v
        .iter()
        .map(|(_, _, m)| m.clone())
        .collect::<Vec<_>>()
        .join("\n");
    for form in [".unwrap()", ".expect(..)", "panic!", "unreachable!"] {
        assert!(text.contains(form), "missing {form}: {text}");
    }
}

#[test]
fn rp_panic_good_is_clean() {
    assert!(lint_fixture("rp_panic_good.rs", &[]).is_empty());
}

#[test]
fn rp_panic_rule_only_applies_to_run_path_files() {
    let src = fixture("rp_panic_bad.rs");
    let ctx = FileContext {
        rel_path: "not_a_run_path.rs",
        determinism: true,
        run_path: false,
        node_reset: true,
        cold_fns: &[],
    };
    assert!(lint_file(&src, &ctx).is_empty());
}

#[test]
fn cold_bad_fires_and_cold_good_is_clean() {
    let cold = vec!["run_until_guarded".to_string()];
    let v = lint_fixture("cold_bad.rs", &cold);
    assert_eq!(rules_of(&v), vec!["COLD_ATTR"]);
    assert!(v[0].2.contains("missing `#[cold]`"), "{v:?}");
    assert!(lint_fixture("cold_good.rs", &cold).is_empty());
}

#[test]
fn workspace_check_is_green() {
    let root = linkpad_lint::find_root(None);
    let report = linkpad_lint::check_workspace(&root).expect("check must run");
    assert!(
        report.violations.is_empty(),
        "workspace lint violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!("{}:{} · {} · {}", v.file, v.line, v.rule, v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.allowed > 0, "allowlist should be exercised");
    assert!(report.files > 50, "walk looks truncated: {}", report.files);
}
