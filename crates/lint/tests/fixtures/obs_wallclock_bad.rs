//! Known-bad fixture: telemetry-shaped code that smuggles the wall
//! clock into a metric sample. DET_WALLCLOCK must fire — a registry
//! stamped with host time is a pure function of nothing, and the
//! bit-for-bit snapshot determinism tests would miscompare forever.
use std::time::{Instant, SystemTime};

pub struct Registry {
    samples: Vec<(u128, u64)>,
}

impl Registry {
    pub fn record(&mut self, value: u64) {
        // Wrong clock: metric samples must be keyed to *sim* time.
        let stamp = Instant::now().elapsed().as_nanos();
        self.samples.push((stamp, value));
    }

    pub fn snapshot_name(&self) -> String {
        // Also wrong: a snapshot named after the host epoch can never
        // be bit-identical across a reset(seed) replay.
        format!("{:?}", SystemTime::now())
    }
}

#[cfg(test)]
mod tests {
    // Fine here: tests may time freely.
    #[test]
    fn t() {
        let _ = std::time::Instant::now();
    }
}
