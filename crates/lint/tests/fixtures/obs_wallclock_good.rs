//! Known-good twin of `obs_wallclock_bad.rs`: the same telemetry shape
//! with every sample keyed to simulation time passed in by the caller.
//! Nothing here may trip any rule.

pub struct Registry {
    samples: Vec<(u64, u64)>,
}

impl Registry {
    /// `sim_nanos` is the engine's clock — a pure function of
    /// `(spec, seed)` — so snapshots replay bit-for-bit.
    pub fn record(&mut self, sim_nanos: u64, value: u64) {
        self.samples.push((sim_nanos, value));
    }

    pub fn snapshot_name(&self, seed: u64) -> String {
        format!("snapshot-seed{seed}-{}", self.samples.len())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let mut r = super::Registry {
            samples: Vec::new(),
        };
        r.record(0, 1);
        assert_eq!(r.snapshot_name(7), "snapshot-seed7-1");
    }
}
