//! Known-bad fixture: an `impl Node for` block with no `fn reset`
//! override silently inherits the no-op default and breaks
//! `reset(seed) ≡ rebuild`.

pub struct Forgetful {
    pending: Vec<u64>,
}

impl Node for Forgetful {
    fn on_timer(&mut self, _tag: u64) {
        self.pending.push(1);
    }
    // No `fn reset`: `pending` survives a Sim::reset and the second
    // replication diverges from a fresh build.
}
