//! Known-bad fixture (with `run_until_guarded` cold-listed): the
//! guarded helper lost its `#[cold]`, so its code size and control flow
//! leak back into the hot loop's codegen.

pub fn run_until(until: u64) -> u64 {
    if until == 0 {
        return run_until_guarded(until);
    }
    until
}

#[inline(never)]
fn run_until_guarded(until: u64) -> u64 {
    until + 1
}
