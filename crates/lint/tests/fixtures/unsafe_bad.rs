//! Known-bad fixture: undocumented unsafe. Both sites must fire.

pub fn slab_get(slots: &[u64], idx: u32) -> u64 {
    unsafe { *slots.get_unchecked(idx as usize) }
}

pub unsafe fn transmute_key(k: u64) -> [u32; 2] {
    std::mem::transmute(k)
}
