//! Known-good fixture: every unsafe site carries an immediately
//! preceding `// SAFETY:` comment.

pub fn slab_get(slots: &[u64], idx: u32) -> u64 {
    // SAFETY: callers hand us a key minted by alloc(), which only ever
    // returns in-bounds slab indices; dealloc never shrinks the slab.
    unsafe { *slots.get_unchecked(idx as usize) }
}

/// Documented unsafe fn.
// SAFETY: the caller must guarantee `k` was produced by `pack_key`, so
// the bit pattern is a valid pair of u32 words on every platform.
pub unsafe fn transmute_key(k: u64) -> [u32; 2] {
    std::mem::transmute(k)
}

pub fn inline_comment_form() {
    unsafe { /* SAFETY: zero-length write is always in bounds. */ }
}
