//! Known-bad fixture: trace-recorder-shaped code that stamps causal
//! records with the host clock. DET_WALLCLOCK must fire — a trace keyed
//! to wall time can never replay bit-for-bit under `reset(seed)`, which
//! is the exact contract the trace determinism tests pin.
use std::time::Instant;

pub struct Recorder {
    records: Vec<(u128, u64, u64)>,
}

impl Recorder {
    pub fn dispatched(&mut self, seq: u64, parent: u64) {
        // Wrong clock: trace records must be keyed to *sim* time.
        let stamp = Instant::now().elapsed().as_nanos();
        self.records.push((stamp, seq, parent));
    }

    pub fn report_name(&self) -> String {
        // Also wrong: a report named after the host epoch can never be
        // bit-identical across a reset(seed) replay.
        format!("trace-{:?}", std::time::SystemTime::now())
    }
}

#[cfg(test)]
mod tests {
    // Fine here: tests may time freely.
    #[test]
    fn t() {
        let _ = std::time::Instant::now();
    }
}
