//! Known-good fixture: deterministic library source. Mentions of the
//! banned names in comments and string literals must not fire — that is
//! the tokenizer's job.
use std::collections::BTreeMap;

/// Not a violation: "HashMap" and "Instant::now()" only appear in this
/// doc comment and in the string below.
pub fn deterministic(m: &BTreeMap<u64, u64>, seed: u64) -> u64 {
    let banned = "HashMap HashSet Instant::now() thread_rng SystemTime";
    let raw = r#"RandomState "quoted" OsRng"#;
    m.values().sum::<u64>() ^ seed ^ (banned.len() as u64) ^ (raw.len() as u64)
}

pub fn seeded_stream(seed: u64, stream: u64) -> u64 {
    // SplitMix-style derivation: all randomness flows from the master
    // seed, never from the OS.
    let mut z = seed.wrapping_add(stream.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^ (z >> 31)
}
