//! Known-good fixture: the reset override clears all run state.

pub struct Remembering {
    pending: Vec<u64>,
}

impl Node for Remembering {
    fn on_timer(&mut self, _tag: u64) {
        self.pending.push(1);
    }
    fn reset(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestProbe;
    // Fine here: test-local probe nodes never join a reset-reused
    // topology.
    impl Node for TestProbe {
        fn on_timer(&mut self, _tag: u64) {}
    }
}
