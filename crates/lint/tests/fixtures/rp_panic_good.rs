//! Known-good fixture: typed errors on the run path; `unwrap` confined
//! to `#[cfg(test)]`; banned names in comments/strings are inert.

pub enum ShardError {
    MissingReport,
    Imbalance,
}

/// Never calls .unwrap() outside tests — this doc-comment mention and
/// the string below must not fire.
pub fn run_step(x: Option<u64>, y: Result<u64, ShardError>) -> Result<u64, ShardError> {
    let msg = "panic! unreachable! .unwrap() .expect(";
    let a = x.ok_or(ShardError::MissingReport)?;
    let b = y?;
    if a > b {
        return Err(ShardError::Imbalance);
    }
    Ok(a + b + msg.len() as u64)
}

pub fn infallible_pattern(v: &[u64]) -> u64 {
    v.iter().copied().fold(0, u64::wrapping_add)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(run_step(Some(1), Ok(2)).map_err(|_| ()).unwrap(), 3);
    }
}
