//! Known-good fixture (with `run_until_guarded` cold-listed): the
//! outlined helper keeps `#[cold]` behind other attributes and
//! qualifiers — the rule must find it there.

pub fn run_until(until: u64) -> u64 {
    if until == 0 {
        return run_until_guarded(until);
    }
    until
}

#[cold]
#[inline(never)]
pub(crate) fn run_until_guarded(until: u64) -> u64 {
    until + 1
}
