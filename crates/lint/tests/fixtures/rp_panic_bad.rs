//! Known-bad fixture: run-path panics. All four banned forms appear
//! outside `#[cfg(test)]` and must fire.

pub fn run_step(x: Option<u64>, y: Result<u64, String>) -> u64 {
    let a = x.unwrap();
    let b = y.expect("shard report missing");
    if a > b {
        panic!("a exceeded b on the run path");
    }
    match a {
        0 => b,
        _ => unreachable!("non-zero a handled above"),
    }
}
