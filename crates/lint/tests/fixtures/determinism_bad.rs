//! Known-bad fixture: every determinism rule must fire on this file
//! when it is linted as library source of a deterministic crate.
use std::collections::{HashMap, HashSet};
use std::collections::hash_map::RandomState;
use std::time::{Instant, SystemTime};

pub fn order_leak(m: &HashMap<u32, u32>, s: &HashSet<u32>) -> u32 {
    // Iteration order depends on the per-process hash seed.
    m.values().sum::<u32>() + s.iter().sum::<u32>()
}

pub fn wall_clock_in_sim_logic() -> bool {
    let t0 = Instant::now();
    let _ = SystemTime::now();
    t0.elapsed().as_nanos() % 2 == 0
}

pub fn os_entropy() -> u64 {
    let mut rng = rand::thread_rng();
    let _state = RandomState::new();
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    // Fine here: tests may time and hash freely.
    use std::collections::HashMap;
    #[test]
    fn t() {
        let _ = std::time::Instant::now();
        let _m: HashMap<u32, u32> = HashMap::new();
    }
}
