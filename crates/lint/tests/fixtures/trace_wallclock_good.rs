//! Known-good twin of `trace_wallclock_bad.rs`: the same recorder shape
//! with every record keyed to the simulation clock the engine passes
//! in. Nothing here may trip any rule.

pub struct Recorder {
    records: Vec<(u64, u64, u64)>,
}

impl Recorder {
    /// `sim_nanos` is the engine's clock — a pure function of
    /// `(spec, seed)` — so traces replay bit-for-bit under reset.
    pub fn dispatched(&mut self, sim_nanos: u64, seq: u64, parent: u64) {
        self.records.push((sim_nanos, seq, parent));
    }

    pub fn report_name(&self, seed: u64) -> String {
        format!("trace-seed{seed}-{}", self.records.len())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let mut r = super::Recorder {
            records: Vec::new(),
        };
        r.dispatched(0, 1, 0);
        assert_eq!(r.report_name(7), "trace-seed7-1");
    }
}
