//! Defense diversity differential harness: every defense family the
//! workloads layer speaks — CIT, constant-rate, adaptive padding,
//! variable payloads — must satisfy the same four equivalence
//! contracts the original CIT-only cohort machinery was built on:
//!
//! 1. **cohort ≡ K gateways** — a `FlowCohort` of K members emits the
//!    same trunk arrival process K real `SenderGateway`s would:
//!    bit-exactly in deterministic regimes (CIT, constant-rate,
//!    MTU-padded payloads — zero RNG draws on the emission path), and
//!    distributionally (window count/byte means and variances) in
//!    stochastic ones (adaptive padding, sampled payload sizes), where
//!    one cohort RNG stream stands in for K per-gateway streams.
//! 2. **reset(seed) ≡ rebuild** — the sweep fast path replays the full
//!    observer window series bit-for-bit for every defense.
//! 3. **S=1 sharded ≡ unsharded** — the sharded harness at one shard
//!    is the plain sim, windows and counters included.
//! 4. **traced ≡ untraced** — causal tracing never perturbs results.
//!
//! Plus the negative paths: defenses without stochastic-cohort support
//! are rejected with a typed error at build time, never a run-path
//! panic.

use linkpad_core::gateway::SenderGateway;
use linkpad_core::jitter::GatewayJitterModel;
use linkpad_core::schedule::{AdaptiveCohortSchedule, LinkSchedule};
use linkpad_sim::cohort::{FlowCohort, LawSchedule, MemberSchedule};
use linkpad_sim::engine::SimBuilder;
use linkpad_sim::observer::{ObserverHandle, WindowedObserver};
use linkpad_sim::packet::FlowId;
use linkpad_sim::time::{SimDuration, SimTime};
use linkpad_stats::moments::{sample_mean, sample_variance};
use linkpad_stats::rng::MasterSeed;
use linkpad_workloads::aggregate::PhaseSpec;
use linkpad_workloads::scenario::{BuiltScenario, ScenarioBuilder, ScenarioError};
use linkpad_workloads::shard::ShardedAggregate;
use linkpad_workloads::spec::{PayloadModel, ScheduleSpec};

const TAU: f64 = 0.010;
const PKT: u32 = 500;

/// The four defense families under test: (label, schedule, payload).
fn defenses() -> Vec<(&'static str, ScheduleSpec, PayloadModel)> {
    vec![
        ("cit", ScheduleSpec::Cit, PayloadModel::Fixed),
        (
            "constant-rate",
            ScheduleSpec::ConstantRate { rate: 125.0 },
            PayloadModel::Fixed,
        ),
        (
            "adaptive",
            ScheduleSpec::AdaptivePadding { reactive: false },
            PayloadModel::Fixed,
        ),
        (
            "variable-payload",
            ScheduleSpec::Cit,
            PayloadModel::Uniform { lo: 300, hi: 900 },
        ),
    ]
}

/// Run K senders of one defense into a windowed observer: either K
/// real zero-jitter gateways or one cohort superposing the same phases
/// (the same construction `build_aggregate` uses). Returns the
/// observer after `secs` of simulated time.
fn observer_run(
    spec: ScheduleSpec,
    payload: PayloadModel,
    phases_ns: &[u64],
    use_cohort: bool,
    seed: u64,
    secs: f64,
) -> ObserverHandle {
    let mut b = SimBuilder::new(MasterSeed::new(seed));
    let (obs, node) = WindowedObserver::new(SimDuration::from_millis_f64(100.0), None);
    let obs_id = b.add_node(Box::new(node));
    if use_cohort {
        let sd: Vec<SimDuration> = phases_ns
            .iter()
            .map(|&p| SimDuration::from_nanos(p))
            .collect();
        let period = spec.mean_interval(TAU);
        let (_, cohort) = FlowCohort::new(obs_id, SimDuration::from_secs_f64(period), &sd, PKT);
        let mut cohort = cohort;
        if !spec.is_deterministic() {
            let sched: Box<dyn MemberSchedule> = match spec.to_schedule(TAU).expect("schedule") {
                LinkSchedule::Law(law) => Box::new(LawSchedule::new(law.into_law())),
                LinkSchedule::Adaptive(_) => Box::new(
                    AdaptiveCohortSchedule::new(phases_ns.len() as u32, TAU).expect("machines"),
                ),
            };
            cohort = cohort.with_member_schedule(sched);
        }
        if let Some(law) = payload.size_law(PKT).expect("size law") {
            cohort = cohort.with_packet_size_law(law);
        }
        b.add_node(Box::new(cohort));
    } else {
        for (k, &phase) in phases_ns.iter().enumerate() {
            let (_, gw) = SenderGateway::new(
                obs_id,
                spec.to_schedule(TAU).expect("schedule"),
                // Zero baseline σ → no tick-δ draws, zero pipeline
                // offset (blocking needs payload arrivals; none here).
                GatewayJitterModel::new(0.0, 6e-6).expect("valid model"),
                PKT,
            );
            let mut gw = gw
                .with_flow(FlowId(k as u32))
                .with_start_phase(SimDuration::from_nanos(phase));
            if let Some(law) = payload.size_law(PKT).expect("size law") {
                gw = gw.with_packet_size_law(law);
            }
            b.add_node(Box::new(gw));
        }
    }
    let mut sim = b.build().expect("builds");
    sim.run_until(SimTime::from_secs_f64(secs));
    obs
}

// ---------------------------------------------------------------- (1) --

#[test]
fn deterministic_defenses_cohort_equals_gateways_bit_exactly() {
    // Mixed phases with a synchronized pair and off-grid values, all
    // below the shortest emission period in the matrix (8 ms at
    // 125 pps). Zero RNG draws on either side → nanosecond equality of
    // the full window series, byte channel included.
    let phases = [0u64, 0, 1_700_000, 4_000_000, 7_300_000];
    for (name, spec, payload) in [
        ("cit", ScheduleSpec::Cit, PayloadModel::Fixed),
        (
            "constant-rate",
            ScheduleSpec::ConstantRate { rate: 125.0 },
            PayloadModel::Fixed,
        ),
        (
            "mtu-padded",
            ScheduleSpec::Cit,
            PayloadModel::MtuPadded { mtu: 1500 },
        ),
    ] {
        let gw = observer_run(spec, payload, &phases, false, 1, 3.0);
        let co = observer_run(spec, payload, &phases, true, 1, 3.0);
        assert!(gw.arrivals() > 0, "{name}: gateways emitted");
        assert_eq!(co.arrivals(), gw.arrivals(), "{name}: arrival totals");
        assert_eq!(
            co.window_series(),
            gw.window_series(),
            "{name}: cohort window series (counts, bytes, PIAT moments) \
             must equal the K-gateway fan-in bit-for-bit"
        );
        // The defense actually changes the wire process: emission totals
        // follow the schedule's period and the payload model's sizes.
        let expect = phases.len() as f64 * 3.0 / spec.mean_interval(TAU);
        assert!(
            (gw.arrivals() as f64 - expect).abs() <= phases.len() as f64,
            "{name}: {} arrivals vs expected {expect}",
            gw.arrivals()
        );
    }
}

#[test]
fn stochastic_defenses_cohort_matches_gateways_in_distribution() {
    // One cohort RNG stream stands in for K gateway streams, so the
    // contract is distributional: window count and byte-rate means and
    // variances agree. 16 members × 20 s × 100 ms windows.
    let phases: Vec<u64> = (0..16).map(|k| k * 450_000).collect();
    for (name, spec, payload) in [
        (
            "adaptive",
            ScheduleSpec::AdaptivePadding { reactive: false },
            PayloadModel::Fixed,
        ),
        (
            "variable-payload",
            ScheduleSpec::Cit,
            PayloadModel::Uniform { lo: 300, hi: 900 },
        ),
        ("sampled-payload", ScheduleSpec::Cit, PayloadModel::Sampled),
    ] {
        let gw = observer_run(spec, payload, &phases, false, 5, 20.0);
        let co = observer_run(spec, payload, &phases, true, 5, 20.0);
        let stats = |o: &ObserverHandle| {
            let counts = o.counts();
            let bytes = o.byte_rates();
            // Drop the boot-transient first window (first emissions land
            // at phase + T₁) and the trailing partial window.
            let n = counts.len().saturating_sub(1);
            (
                sample_mean(&counts[1..n]).unwrap(),
                sample_variance(&counts[1..n]).unwrap(),
                sample_mean(&bytes[1..n]).unwrap(),
                sample_variance(&bytes[1..n]).unwrap(),
            )
        };
        let (gm, gv, gbm, gbv) = stats(&gw);
        let (cm, cv, cbm, cbv) = stats(&co);
        assert!(
            (cm - gm).abs() / gm < 0.05,
            "{name}: count means {cm} vs {gm}"
        );
        assert!(
            (cbm - gbm).abs() / gbm < 0.05,
            "{name}: byte-rate means {cbm} vs {gbm}"
        );
        // Variances carry wider estimator noise; same order of
        // magnitude is the honest contract at this sample size. The
        // timing-deterministic variable-payload families have zero
        // count variance on both sides — assert that exactly.
        if spec.is_deterministic() {
            assert_eq!(gv, 0.0, "{name}: gateway counts are a comb");
            assert_eq!(cv, 0.0, "{name}: cohort counts are a comb");
        } else {
            assert!(
                cv / gv > 0.5 && cv / gv < 2.0,
                "{name}: count variances {cv} vs {gv}"
            );
        }
        assert!(
            cbv / gbv > 0.5 && cbv / gbv < 2.0,
            "{name}: byte-rate variances {cbv} vs {gbv}"
        );
    }
}

// ---------------------------------------------------------------- (2) --

/// The aggregate-with-cohorts scenario for one defense, streaming
/// observer on the trunk, desynchronized phases (the stochastic-cohort
/// stress case from the issue).
fn cohort_builder(seed: u64, spec: ScheduleSpec, payload: PayloadModel) -> ScenarioBuilder {
    ScenarioBuilder::aggregate(seed, 10)
        .with_payload_rate(10.0)
        .with_trunk_observer(0.1)
        .with_cohorts(4)
        .with_phases(PhaseSpec::Uniform { seed: 11 })
        .with_schedule(spec)
        .with_payload_model(payload)
}

/// The trunk observer's full window series at raw bit precision.
fn observer_series_bits(s: &mut BuiltScenario, secs: f64) -> Vec<u64> {
    s.run_for_secs(secs);
    let obs = s
        .aggregate
        .as_ref()
        .expect("aggregate handles")
        .trunk_observer
        .clone()
        .expect("observer-mode trunk");
    let mut bits: Vec<u64> = obs.counts().iter().map(|c| c.to_bits()).collect();
    bits.extend(obs.byte_rates().iter().map(|x| x.to_bits()));
    bits.extend(obs.piat_means().iter().map(|x| x.to_bits()));
    bits.extend(obs.piat_variances().iter().map(|x| x.to_bits()));
    bits
}

#[test]
fn reset_equals_rebuild_for_every_defense() {
    for (name, spec, payload) in defenses() {
        let builder = cohort_builder(51, spec, payload);
        let mut fresh = builder.build().expect("fresh build");
        let want = observer_series_bits(&mut fresh, 2.0);
        assert!(want.len() > 40, "{name}: real series");

        // Build under a different seed, dirty it mid-run, reset back:
        // per-member heap state, adaptive machines, size-law draws and
        // observer windows must all replay bit-for-bit.
        let mut reused = builder.clone().with_seed(99).build().expect("build");
        reused.run_for_secs(1.13);
        reused.reset(51);
        let got = observer_series_bits(&mut reused, 2.0);
        assert_eq!(got, want, "{name}: reset diverged from rebuild");
    }
}

// ---------------------------------------------------------------- (3) --

#[test]
fn one_shard_sharded_run_equals_the_unsharded_sim_for_every_defense() {
    let secs = 2.0;
    for (name, spec, payload) in defenses() {
        let builder = cohort_builder(61, spec, payload).with_shards(1);
        let mut single = builder.clone().build().expect("builds");
        single.run_for_secs(secs);
        let obs = single
            .aggregate
            .as_ref()
            .expect("aggregate handles")
            .trunk_observer
            .clone()
            .expect("observer-mode trunk");
        let run = ShardedAggregate::new(builder)
            .expect("valid sharding")
            .run_for_secs(secs)
            .expect("runs");
        assert_eq!(run.arrivals(), obs.arrivals(), "{name}: arrival totals");
        assert_eq!(
            run.windows,
            obs.window_series(),
            "{name}: one-shard windows are the unsharded observer's"
        );
    }
}

// ---------------------------------------------------------------- (4) --

#[test]
fn tracing_never_perturbs_results_for_any_defense() {
    for (name, spec, payload) in defenses() {
        let builder = cohort_builder(71, spec, payload).with_shards(1);
        let traced = ShardedAggregate::new(builder.clone())
            .expect("valid")
            .with_tracing();
        let run_t = traced.run_for_secs(1.5).expect("runs");
        let trace = run_t.shards[0].trace.as_ref().expect("tracing enabled");
        assert!(!trace.records.is_empty(), "{name}: trace captured");

        let plain = ShardedAggregate::new(builder)
            .expect("valid")
            .run_for_secs(1.5)
            .expect("runs");
        assert!(plain.shards[0].trace.is_none());
        assert_eq!(run_t.windows, plain.windows, "{name}: windows perturbed");
        assert_eq!(
            run_t.merged_metrics(),
            plain.merged_metrics(),
            "{name}: counters perturbed"
        );
        assert_eq!(run_t.events(), plain.events(), "{name}: events perturbed");
    }
}

// -------------------------------------------------------- negatives --

#[test]
fn cohorts_reject_defenses_without_stochastic_cohort_support() {
    let err = ScenarioBuilder::aggregate(1, 8)
        .with_cohorts(4)
        .with_schedule(ScheduleSpec::AdaptivePadding { reactive: true })
        .build()
        .err()
        .expect("cohorts with a reactive machine must fail to build");
    match err {
        ScenarioError::CohortUnsupported { schedule, reason } => {
            assert_eq!(schedule, "adaptive-reactive");
            assert!(
                reason.contains("client traffic"),
                "reason names the model gap: {reason}"
            );
        }
        other => panic!("expected CohortUnsupported, got: {other}"),
    }
}

#[test]
fn unsupported_cohort_defenses_still_run_per_flow() {
    // The same reactive machine is fine without cohorts — the gate is
    // about the superposition model, not the defense itself.
    let mut s = ScenarioBuilder::aggregate(1, 3)
        .with_payload_rate(10.0)
        .with_schedule(ScheduleSpec::AdaptivePadding { reactive: true })
        .build()
        .expect("per-flow reactive adaptive builds");
    s.run_for_secs(1.0);
    assert!(s.gateway.ticks() > 0, "the machine actually emits");
}

#[test]
fn invalid_payload_models_are_typed_errors_not_panics() {
    for model in [
        PayloadModel::Uniform { lo: 0, hi: 500 },
        PayloadModel::Uniform { lo: 900, hi: 300 },
        PayloadModel::MtuPadded { mtu: 0 },
    ] {
        let err = ScenarioBuilder::lab(1)
            .with_payload_model(model)
            .build()
            .err()
            .expect("invalid payload model must fail to build");
        assert!(
            matches!(err, ScenarioError::Stats(_)),
            "typed stats error, got: {err}"
        );
    }
}
