//! Reset-vs-fresh determinism: the scenario-reset fast path must be
//! **bit-identical** to rebuilding.
//!
//! `BuiltScenario::reset(seed)` exists so sweeps can reuse a topology
//! across replications; its whole value rests on the contract that a
//! reset scenario replays exactly what a fresh `build()` at the same
//! seed would produce. These property tests drive that contract over
//! randomized seeds for the lab, campus and aggregate families, on both
//! tap positions, comparing PIAT traces at full bit precision
//! (`f64::to_bits`) — any drifted RNG stream, stale node state, or
//! leftover event-store entry shows up as a bit difference.

use linkpad_sim::fault::{FaultPlan, LossModel, OutageSchedule};
use linkpad_sim::time::SimDuration;
use linkpad_workloads::scenario::{BuiltScenario, ScenarioBuilder, TapPosition};
use linkpad_workloads::spec::{PayloadModel, ScheduleSpec};
use proptest::prelude::*;

/// The faulted-aggregate configuration: bursty Gilbert–Elliott trunk
/// loss, scheduled trunk outages and observer gaps, all at modest
/// levels so PIAT collection still completes.
fn fault_plan() -> FaultPlan {
    FaultPlan::new(5)
        .with_trunk_loss(LossModel::GilbertElliott {
            p_good_to_bad: 0.02,
            p_bad_to_good: 0.3,
            loss_good: 0.01,
            loss_bad: 0.3,
        })
        .with_trunk_outage(
            OutageSchedule::new(
                SimDuration::from_secs_f64(1.0),
                SimDuration::from_secs_f64(0.08),
            )
            .with_phase(SimDuration::from_secs_f64(0.3)),
        )
        .with_observer_gaps(OutageSchedule::new(
            SimDuration::from_secs_f64(0.7),
            SimDuration::from_secs_f64(0.21),
        ))
}

/// Collect a PIAT trace as raw bits (exact comparison, no epsilons).
fn trace_bits(s: &mut BuiltScenario, at: TapPosition, count: usize) -> Vec<u64> {
    s.collect_piats(at, count, 8)
        .expect("collection succeeds")
        .into_iter()
        .map(f64::to_bits)
        .collect()
}

/// The three scenario families under test, smallest faithful shapes.
fn families(seed: u64) -> Vec<(&'static str, ScenarioBuilder)> {
    vec![
        ("lab", ScenarioBuilder::lab(seed).with_payload_rate(10.0)),
        (
            "campus",
            ScenarioBuilder::campus(seed, 0.2).with_payload_rate(10.0),
        ),
        (
            "aggregate",
            ScenarioBuilder::aggregate(seed, 6).with_payload_rate(10.0),
        ),
        (
            // Streaming trunk observer + rate-switching target: the
            // aggregate-adversary configuration, exercising the
            // observer's and switching source's reset hooks.
            "aggregate-observer",
            ScenarioBuilder::aggregate(seed, 5)
                .with_payload_rate(10.0)
                .with_trunk_observer(0.05)
                .with_switching_target([10.0, 40.0], 0.4),
        ),
        (
            // Cohort mode: non-target flows as FlowCohort superposition
            // nodes (desynchronized phases), exercising the cohort's
            // reset hook — the shard workers' reset-reuse fast path
            // rests on it.
            "aggregate-cohorts",
            ScenarioBuilder::aggregate(seed, 9)
                .with_payload_rate(10.0)
                .with_trunk_observer(0.05)
                .with_cohorts(3)
                .with_phases(linkpad_workloads::aggregate::PhaseSpec::Uniform { seed: 7 }),
        ),
        (
            // Constant-rate link padding in stochastic-cohort mode:
            // the deterministic comb at the schedule's own period
            // (8 ms, not τ), desynchronized phases.
            "aggregate-constant-rate-cohorts",
            ScenarioBuilder::aggregate(seed, 9)
                .with_payload_rate(10.0)
                .with_trunk_observer(0.05)
                .with_cohorts(3)
                .with_schedule(ScheduleSpec::ConstantRate { rate: 125.0 })
                .with_phases(linkpad_workloads::aggregate::PhaseSpec::Uniform { seed: 13 }),
        ),
        (
            // Adaptive padding in cohort mode: per-member Idle/Burst
            // state machines behind the cohort's next-fire heap — the
            // reset hook must rewind every machine and the heap.
            "aggregate-adaptive-cohorts",
            ScenarioBuilder::aggregate(seed, 9)
                .with_payload_rate(10.0)
                .with_trunk_observer(0.05)
                .with_cohorts(3)
                .with_schedule(ScheduleSpec::AdaptivePadding { reactive: false })
                .with_phases(linkpad_workloads::aggregate::PhaseSpec::Uniform { seed: 17 }),
        ),
        (
            // Variable payload sizes: per-emission size draws on the
            // gateway and cohort paths must replay under reset.
            "aggregate-variable-payload-cohorts",
            ScenarioBuilder::aggregate(seed, 9)
                .with_payload_rate(10.0)
                .with_trunk_observer(0.05)
                .with_cohorts(3)
                .with_payload_model(PayloadModel::Sampled)
                .with_phases(linkpad_workloads::aggregate::PhaseSpec::Uniform { seed: 19 }),
        ),
        (
            // Fault injection: the lossy trunk gate's RNG and
            // Gilbert–Elliott chain state, the outage schedule and the
            // observer's gap handling must all replay under reset —
            // the faulted sweep's fast path rests on it.
            "aggregate-faulted",
            ScenarioBuilder::aggregate(seed, 5)
                .with_payload_rate(10.0)
                .with_trunk_observer(0.05)
                .with_faults(fault_plan()),
        ),
    ]
}

/// Fresh build at `seed` vs: a scenario built at `other`, dirtied by a
/// run, then reset to `seed`. Must match bit-for-bit at both taps.
fn assert_reset_matches_fresh(seed: u64, other: u64, count: usize) {
    for (name, builder) in families(seed) {
        for at in [TapPosition::SenderEgress, TapPosition::ReceiverIngress] {
            let mut fresh = builder.build().expect("fresh build");
            let want = trace_bits(&mut fresh, at, count);

            // Build under a *different* seed and dirty every node and the
            // event store before resetting — reset must erase all of it.
            let mut reused = builder.clone().with_seed(other).build().expect("build");
            reused.run_for_secs(1.3);
            reused.reset(seed);
            let got = trace_bits(&mut reused, at, count);
            assert_eq!(
                got, want,
                "{name}/{at:?}: reset trace diverged from fresh build"
            );

            // Resetting again replays again (idempotent reuse).
            reused.reset(seed);
            let again = trace_bits(&mut reused, at, count);
            assert_eq!(again, want, "{name}/{at:?}: second reset diverged");
        }
    }
}

proptest! {
    // Each case builds every family × 2 taps × 3 runs; keep the case
    // count modest so the suite stays in CI budget.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn reset_is_bit_identical_to_fresh_build(seed in 1u64..u64::MAX / 2, salt in 1u64..1000) {
        assert_reset_matches_fresh(seed, seed.wrapping_add(salt), 120);
    }

    #[test]
    fn different_seeds_diverge_after_reset(seed in 1u64..u64::MAX / 2) {
        // The converse guard: reset really reseeds (a reset that ignored
        // the seed would pass the identity test whenever other == seed).
        let builder = ScenarioBuilder::lab(seed).with_payload_rate(10.0);
        let mut s = builder.build().expect("build");
        let a = trace_bits(&mut s, TapPosition::SenderEgress, 200);
        s.reset(seed.wrapping_add(1));
        let b = trace_bits(&mut s, TapPosition::SenderEgress, 200);
        prop_assert!(a != b, "different seeds must give different jitter traces");
    }
}

#[test]
fn reset_after_partial_collection_still_matches() {
    // A mid-collection reset (tap partially filled, events in flight at
    // every tier of the queue) is the sweep loop's actual usage pattern.
    for (name, builder) in families(42) {
        let mut fresh = builder.build().expect("fresh");
        let want = trace_bits(&mut fresh, TapPosition::ReceiverIngress, 150);

        let mut reused = builder.build().expect("build");
        let _ = trace_bits(&mut reused, TapPosition::ReceiverIngress, 37);
        reused.run_for_secs(0.01); // stop mid-flight
        reused.reset(42);
        let got = trace_bits(&mut reused, TapPosition::ReceiverIngress, 150);
        assert_eq!(got, want, "{name}: mid-collection reset diverged");
    }
}

#[test]
fn reset_clears_instrumentation_handles() {
    let builder = ScenarioBuilder::aggregate(7, 4).with_payload_rate(20.0);
    let mut s = builder.build().expect("build");
    s.run_for_secs(2.0);
    let agg = s.aggregate.as_ref().expect("aggregate handles");
    let trunk_tap = agg.trunk_tap.clone().expect("tap-mode trunk");
    assert!(s.gateway.ticks() > 0);
    assert!(trunk_tap.count() > 0);
    assert!(s.payload_sink.count() > 0);
    s.reset(7);
    let agg = s.aggregate.as_ref().expect("aggregate handles");
    assert_eq!(s.gateway.ticks(), 0, "gateway stats survive reset");
    assert_eq!(s.receiver.payload_delivered(), 0);
    assert_eq!(trunk_tap.count(), 0, "trunk tap survives reset");
    assert_eq!(s.sender_tap.count(), 0);
    assert_eq!(s.receiver_tap.count(), 0);
    assert_eq!(s.payload_sink.count(), 0);
    for (gw, rx) in agg.gateways.iter().zip(&agg.receivers) {
        assert_eq!(gw.ticks(), 0);
        assert_eq!(rx.dummies_stripped(), 0);
    }
}

/// The streaming observer's window series as raw bits: counts, byte
/// rates and PIAT moments, all at full `f64` precision (`NaN`s included
/// — empty windows must be empty in *exactly* the same places).
fn observer_series_bits(s: &mut BuiltScenario, secs: f64) -> Vec<u64> {
    s.run_for_secs(secs);
    let obs = s
        .aggregate
        .as_ref()
        .expect("aggregate handles")
        .trunk_observer
        .clone()
        .expect("observer-mode trunk");
    let mut bits: Vec<u64> = obs.counts().iter().map(|c| c.to_bits()).collect();
    bits.extend(obs.byte_rates().iter().map(|x| x.to_bits()));
    bits.extend(obs.piat_means().iter().map(|x| x.to_bits()));
    bits.extend(obs.piat_variances().iter().map(|x| x.to_bits()));
    bits.extend(obs.coverages().iter().map(|x| x.to_bits()));
    bits
}

#[test]
fn observer_window_series_is_bit_identical_across_reset() {
    let builder = ScenarioBuilder::aggregate(23, 5)
        .with_payload_rate(10.0)
        .with_trunk_observer(0.05)
        .with_switching_target([10.0, 40.0], 0.4);

    let mut fresh = builder.build().expect("fresh build");
    let want = observer_series_bits(&mut fresh, 2.0);
    assert!(want.len() > 40, "observer captured a real series");

    // Build under a different seed, dirty it mid-window, then reset.
    let mut reused = builder.clone().with_seed(77).build().expect("build");
    reused.run_for_secs(1.234);
    reused.reset(23);
    {
        let agg = reused.aggregate.as_ref().expect("aggregate handles");
        let obs = agg.trunk_observer.clone().expect("observer-mode trunk");
        assert_eq!(obs.windows(), 0, "reset empties the window series");
        assert_eq!(obs.arrivals(), 0);
        let log = agg.target_rate_log.clone().expect("switching target");
        assert!(log.entries().is_empty(), "reset clears the rate log");
    }
    let got = observer_series_bits(&mut reused, 2.0);
    assert_eq!(got, want, "observer series diverged from fresh build");

    // And the ground-truth log replays identically too.
    let log = |s: &BuiltScenario| {
        s.aggregate
            .as_ref()
            .unwrap()
            .target_rate_log
            .clone()
            .unwrap()
            .entries()
    };
    assert_eq!(log(&fresh), log(&reused));
}

#[test]
fn faulted_drop_pattern_and_gap_mask_replay_across_reset() {
    // Same seed ⇒ bit-identical drop pattern (per-cause gate counters)
    // and gap mask (per-window coverage fractions); a reset scenario
    // replays both exactly as a fresh build would.
    let builder = ScenarioBuilder::aggregate(29, 6)
        .with_payload_rate(10.0)
        .with_trunk_observer(0.05)
        .with_faults(fault_plan());

    let gate_of = |s: &BuiltScenario| {
        s.aggregate
            .as_ref()
            .expect("aggregate handles")
            .fault_gate
            .clone()
            .expect("trunk faults configured")
    };
    let mut fresh = builder.build().expect("fresh build");
    let want = observer_series_bits(&mut fresh, 2.0);
    let g = gate_of(&fresh);
    let want_drops = (g.dropped_loss(), g.dropped_outage(), g.passed());
    assert!(g.dropped_loss() > 0, "loss model fired");
    assert!(g.dropped_outage() > 0, "outage fired");

    // Dirty a different-seed build mid-outage-cycle, then reset.
    let mut reused = builder.clone().with_seed(101).build().expect("build");
    reused.run_for_secs(0.9);
    assert!(gate_of(&reused).offered() > 0);
    reused.reset(29);
    let g = gate_of(&reused);
    assert_eq!(
        (g.dropped_loss(), g.dropped_outage(), g.passed()),
        (0, 0, 0),
        "reset clears the gate counters"
    );
    let got = observer_series_bits(&mut reused, 2.0);
    assert_eq!(got, want, "faulted series (incl. gap mask) diverged");
    assert_eq!(
        (g.dropped_loss(), g.dropped_outage(), g.passed()),
        want_drops,
        "drop pattern diverged from fresh build"
    );

    // A different fault seed under the same run seed re-randomizes the
    // realization without touching the traffic processes.
    let mut other_plan = builder
        .clone()
        .with_faults(fault_plan().with_trunk_loss(LossModel::Bernoulli { p: 0.1 }));
    other_plan = other_plan.with_seed(29);
    let mut other = other_plan.build().expect("build");
    let _ = observer_series_bits(&mut other, 2.0);
    let go = gate_of(&other);
    assert_ne!(go.dropped_loss(), want_drops.0, "loss law change must show");
}
