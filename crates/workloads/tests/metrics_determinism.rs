//! Telemetry determinism: metric snapshots and engine profiles are a
//! pure function of `(spec, seed)`.
//!
//! Three contracts, all compared at full bit precision (snapshots and
//! profiles carry only integers):
//!
//! * **reset ≡ fresh** — the snapshot (and engine profile) of a
//!   `reset(seed)`-then-run scenario is bit-identical to a fresh
//!   `build()` at the same seed.
//! * **sharded ≡ unsharded** — the merged counter subset of an N-shard
//!   run equals the unsharded single sim's, for every N, because the
//!   counters are exactly the superposable trunk quantities
//!   (`window_metrics` keeps distributions out of the per-shard
//!   snapshots).
//! * **manifests tell the truth** — a watchdog-truncated run's manifest
//!   carries `interrupted: true` plus the truncation point, and the
//!   harness event log records the truncation and any retries.
//! * **traces replay and never perturb** — the causal trace is bit-
//!   identical under `reset(seed)` vs a fresh build, a one-shard
//!   sharded run's trace equals the unsharded sim's, and a traced run's
//!   simulated results are byte-identical to an untraced run's.

use linkpad_obs::{EventLog, HarnessEvent};
use linkpad_workloads::scenario::ScenarioBuilder;
use linkpad_workloads::shard::{window_metrics, ShardedAggregate};
use linkpad_workloads::spec::PayloadModel;

fn observer_builder(seed: u64, flows: usize, shards: usize) -> ScenarioBuilder {
    ScenarioBuilder::aggregate(seed, flows)
        .with_payload_rate(10.0)
        .with_trunk_observer(0.1)
        .with_cohorts(4)
        .with_shards(shards)
}

/// Run an unsharded scenario and snapshot its trunk view.
fn single_metrics(builder: &ScenarioBuilder, secs: f64) -> linkpad_obs::Snapshot {
    let mut s = builder.clone().build().expect("builds");
    s.run_for_secs(secs);
    let obs = s
        .aggregate
        .as_ref()
        .expect("aggregate family")
        .trunk_observer
        .clone()
        .expect("observer configured");
    window_metrics(&obs.window_series(), obs.arrivals(), s.sim.pending_events())
}

#[test]
fn reset_and_fresh_builds_produce_bit_identical_snapshots_and_profiles() {
    let builder = observer_builder(91, 10, 1);
    let mut fresh = builder.clone().build().expect("builds");
    fresh.sim.enable_profiling();
    fresh.run_for_secs(1.5);
    let obs = |s: &linkpad_workloads::scenario::BuiltScenario| {
        let o = s
            .aggregate
            .as_ref()
            .expect("aggregate family")
            .trunk_observer
            .clone()
            .expect("observer configured");
        window_metrics(&o.window_series(), o.arrivals(), s.sim.pending_events())
    };
    let fresh_metrics = obs(&fresh);
    let fresh_profile = fresh.sim.profile_report().expect("profiling enabled");
    assert!(fresh_metrics.counter("trunk.arrivals").unwrap() > 0);

    // Pollute the scenario with a different-seed run, then reset back:
    // both the metric snapshot and the engine profile must replay
    // bit-for-bit. (The trunk *counters* may coincide across seeds —
    // CIT padding making the output rate seed-independent is the
    // countermeasure working — so the teeth of this test are the
    // replay equalities, not a cross-seed inequality.)
    fresh.reset(12345);
    fresh.run_for_secs(1.5);
    fresh.reset(91);
    fresh.run_for_secs(1.5);
    assert_eq!(obs(&fresh), fresh_metrics, "reset must replay the snapshot");
    assert_eq!(
        fresh.sim.profile_report().expect("still enabled"),
        fresh_profile,
        "reset must replay the engine profile"
    );
}

#[test]
fn sharded_merged_counters_equal_the_unsharded_run_bit_for_bit() {
    let secs = 2.05; // end mid-window
    let single = single_metrics(&observer_builder(92, 13, 1), secs);
    let single_counters = single.counters();
    assert!(!single_counters.is_empty());
    for shards in [1usize, 2, 3, 5] {
        let sharded = ShardedAggregate::new(observer_builder(92, 13, shards)).expect("valid");
        let run = sharded.run_for_secs(secs).expect("runs");
        let merged = run.merged_metrics();
        assert_eq!(
            merged.counters(),
            single_counters,
            "{shards} shards: merged counters must superpose exactly"
        );
        // The per-shard snapshots really are the source: their pairwise
        // merge equals the run-level merge's counter subset.
        let mut by_hand = linkpad_obs::Snapshot::empty();
        for s in &run.shards {
            by_hand.merge(&s.metrics);
        }
        assert_eq!(by_hand.counters(), single_counters, "{shards} shards");
    }
}

#[test]
fn variable_payload_sharded_merge_byte_counts_are_bit_identical() {
    let secs = 2.05; // end mid-window
    let builder = |shards: usize, model: PayloadModel| {
        observer_builder(89, 13, shards).with_payload_model(model)
    };

    // Deterministic variable payloads (MTU padding): every emission is
    // 1500 B on the wire, so the merged byte counter must superpose
    // exactly for every shard count — the bytes channel inherits the
    // count channel's superposition contract bit-for-bit.
    let mtu = PayloadModel::MtuPadded { mtu: 1500 };
    let single = single_metrics(&builder(1, mtu), secs);
    let want_bytes = single.counter("trunk.window_bytes").expect("bytes counter");
    let want_count = single.counter("trunk.window_count").expect("count counter");
    assert_eq!(
        want_bytes,
        want_count * 1500,
        "MTU padding pads every packet"
    );
    assert_ne!(want_bytes, want_count * 500, "sizes differ from the base");
    for shards in [1usize, 2, 3, 5] {
        let run = ShardedAggregate::new(builder(shards, mtu))
            .expect("valid")
            .run_for_secs(secs)
            .expect("runs");
        assert_eq!(
            run.merged_metrics().counters(),
            single.counters(),
            "{shards} shards: merged byte counters must superpose exactly"
        );
    }

    // Stochastic sizes: shard workers own distinct RNG streams, so the
    // cross-shard contract is S=1 bit-exactness against the unsharded
    // sim (per-window counts *and* bytes) plus thread-schedule
    // invariance at S>1 — not cross-S equality.
    let sampled = PayloadModel::Sampled;
    let mut unsharded = builder(1, sampled).build().expect("builds");
    unsharded.run_for_secs(secs);
    let obs = unsharded
        .aggregate
        .as_ref()
        .expect("aggregate family")
        .trunk_observer
        .clone()
        .expect("observer configured");
    let run1 = ShardedAggregate::new(builder(1, sampled))
        .expect("valid")
        .run_for_secs(secs)
        .expect("runs");
    assert_eq!(
        run1.windows,
        obs.window_series(),
        "S=1 sampled-payload windows (incl. bytes) are the unsharded sim's"
    );
    let a = ShardedAggregate::new(builder(3, sampled))
        .expect("valid")
        .run_for_secs_with_threads(secs, 1)
        .expect("runs");
    let b = ShardedAggregate::new(builder(3, sampled))
        .expect("valid")
        .run_for_secs_with_threads(secs, 4)
        .expect("runs");
    assert_eq!(a.windows, b.windows, "sampled-payload thread invariance");
    assert_eq!(a.merged_metrics(), b.merged_metrics());
}

#[test]
fn profiled_sharded_runs_are_deterministic_and_carry_reports() {
    let sharded = ShardedAggregate::new(observer_builder(93, 10, 3))
        .expect("valid")
        .with_profiling();
    let a = sharded.run_for_secs_with_threads(1.5, 1).expect("runs");
    let b = sharded.run_for_secs_with_threads(1.5, 4).expect("runs");
    for (ra, rb) in a.shards.iter().zip(&b.shards) {
        let pa = ra.profile.as_ref().expect("profiling enabled");
        let pb = rb.profile.as_ref().expect("profiling enabled");
        assert_eq!(pa, pb, "shard {} profile is schedule-independent", ra.shard);
        assert_eq!(pa.events(), ra.events, "profile counts every event");
        assert!(pa.store.push_near + pa.store.push_rung + pa.store.push_far > 0);
    }
    // Profiling must not perturb the simulated results.
    let plain = ShardedAggregate::new(observer_builder(93, 10, 3))
        .expect("valid")
        .run_for_secs_with_threads(1.5, 2)
        .expect("runs");
    assert_eq!(a.windows, plain.windows);
    assert_eq!(a.merged_metrics(), plain.merged_metrics());
}

#[test]
fn reset_and_fresh_builds_produce_bit_identical_traces() {
    let builder = observer_builder(97, 10, 1);
    let mut s = builder.clone().build().expect("builds");
    s.sim.enable_tracing();
    s.run_for_secs(1.5);
    let fresh = s.sim.trace_report().expect("tracing enabled");
    assert!(!fresh.records.is_empty());
    assert!(fresh.dispatched > 0);

    // Pollute with a different-seed run, then reset back: the trace —
    // records, provenance links, decimation stride — must replay
    // bit-for-bit, exactly like the metric snapshot and the profile.
    s.reset(24680);
    s.run_for_secs(1.5);
    s.reset(97);
    s.run_for_secs(1.5);
    assert_eq!(
        s.sim.trace_report().expect("still enabled"),
        fresh,
        "reset must replay the trace"
    );
}

#[test]
fn one_shard_traces_equal_the_unsharded_sim_and_never_perturb_results() {
    // Shard 0 runs under the builder's own seed, so the S = 1 sharded
    // trace must be the unsharded sim's trace bit-for-bit — provenance
    // links included.
    let secs = 1.55;
    let builder = observer_builder(98, 10, 1);
    let mut single = builder.clone().build().expect("builds");
    single.sim.enable_tracing();
    single.run_for_secs(secs);
    let single_trace = single.sim.trace_report().expect("tracing enabled");
    assert!(!single_trace.records.is_empty());

    let sharded = ShardedAggregate::new(builder.clone())
        .expect("valid")
        .with_tracing();
    let run = sharded.run_for_secs(secs).expect("runs");
    let shard_trace = run.shards[0].trace.as_ref().expect("tracing enabled");
    assert_eq!(
        shard_trace, &single_trace,
        "one-shard trace is the single sim's trace"
    );

    // Tracing must not perturb the simulated results: windows, merged
    // metrics, and event totals match an untraced run byte-for-byte.
    let plain = ShardedAggregate::new(builder)
        .expect("valid")
        .run_for_secs(secs)
        .expect("runs");
    assert!(plain.shards[0].trace.is_none());
    assert_eq!(run.windows, plain.windows);
    assert_eq!(run.merged_metrics(), plain.merged_metrics());
    assert_eq!(run.events(), plain.events());
}

#[test]
fn truncated_runs_announce_themselves_in_manifest_and_event_log() {
    let builder = observer_builder(94, 12, 3);
    let full = ShardedAggregate::new(builder.clone())
        .expect("valid")
        .run_for_secs_with_threads(2.0, 1)
        .expect("runs");
    assert!(!full.interrupted());
    let budget = full.events() / full.shards.len() as u64 / 4;
    let bounded = ShardedAggregate::new(builder)
        .expect("valid")
        .with_watchdog(Some(budget), None);
    let mut log = EventLog::new();
    let run = bounded.run_for_secs_logged(2.0, 1, &mut log).expect("runs");
    assert!(run.interrupted());

    // The manifest carries the explicit interrupted flag and cut point.
    let manifest = bounded.manifest("metrics_determinism", &run);
    assert!(manifest.interrupted);
    let t = manifest.truncation.expect("truncation recorded");
    assert_eq!(t.complete_windows, run.windows.len());
    assert!(t.sim_nanos > 0, "trip point is a real sim time");
    let json = manifest.to_json();
    assert!(json.contains("\"interrupted\": true"));
    assert!(json.contains("\"schema\": \"linkpad-run-manifest-v1\""));

    // The event log records the truncation prominently.
    let kinds: Vec<&str> = log.iter().map(|(_, e)| e.kind()).collect();
    assert!(kinds.contains(&"run_start"));
    assert!(kinds.contains(&"watchdog_truncation"));
    assert!(kinds.contains(&"run_finished"));
    let truncations: Vec<_> = log
        .iter()
        .filter_map(|(_, e)| match e {
            HarnessEvent::WatchdogTruncation {
                complete_windows,
                sim_nanos,
                ..
            } => Some((*complete_windows, *sim_nanos)),
            _ => None,
        })
        .collect();
    assert_eq!(truncations.len(), 1);
    assert_eq!(truncations[0].0, run.windows.len());
    assert_eq!(truncations[0].1, t.sim_nanos);
}

#[test]
fn retried_shards_appear_in_the_event_log_and_logged_runs_match_unlogged() {
    let clean = ShardedAggregate::new(observer_builder(95, 12, 3)).expect("valid");
    let baseline = clean.run_for_secs_with_threads(1.5, 2).expect("runs");
    let mut faulty = ShardedAggregate::new(observer_builder(95, 12, 3)).expect("valid");
    faulty.inject_panic_once(1);
    let mut log = EventLog::new();
    let run = faulty
        .run_for_secs_logged(1.5, 2, &mut log)
        .expect("retry succeeds");
    assert_eq!(run.windows, baseline.windows, "logging changes nothing");
    assert_eq!(run.merged_metrics(), baseline.merged_metrics());
    let kinds: Vec<&str> = log.iter().map(|(_, e)| e.kind()).collect();
    assert!(kinds.contains(&"shard_panicked"));
    assert!(kinds.contains(&"shard_retried"));
    let jsonl = log.to_jsonl();
    assert!(jsonl.contains("\"kind\":\"shard_panicked\""));
    assert!(jsonl.contains("injected shard fault"));
}

#[test]
fn complete_run_manifest_has_no_truncation_and_real_totals() {
    let sharded = ShardedAggregate::new(observer_builder(96, 8, 2)).expect("valid");
    let run = sharded.run_for_secs(1.5).expect("runs");
    let manifest = sharded.manifest("metrics_determinism", &run);
    assert!(!manifest.interrupted);
    assert!(manifest.truncation.is_none());
    assert_eq!(manifest.events, run.events());
    assert_eq!(manifest.arrivals, run.arrivals());
    assert_eq!(manifest.windows, run.windows.len());
    assert_eq!(manifest.shards.len(), 2);
    assert!(manifest.spec_digest.starts_with("fnv1a:"));
    assert_eq!(
        manifest.metrics.counter("trunk.arrivals"),
        Some(run.arrivals())
    );
    // Manifests are deterministic apart from wall time.
    let run2 = sharded.run_for_secs(1.5).expect("runs");
    let mut m2 = sharded.manifest("metrics_determinism", &run2);
    m2.wall_secs = manifest.wall_secs;
    assert_eq!(m2, manifest);
}
