//! Cohort-vs-gateways exactness: a [`FlowCohort`] must emit **the same
//! trunk arrivals** a K-gateway fan-in would.
//!
//! The deterministic regime makes the comparison exact: with zero
//! baseline jitter and no payload traffic, a CIT `SenderGateway` makes
//! no RNG draws on its tick path (the `Deterministic` interval law is
//! sample-free and the blocking term needs payload arrivals), so its
//! emissions are bit-exact nominal instants `phase + j·τ` — and so are
//! an unjittered cohort's. Any discrepancy in the phase collapse, cycle
//! arithmetic, or first-tick convention shows up as a nanosecond
//! mismatch here.
//!
//! A second test keeps the comparison honest under jitter: with the
//! calibrated disturbance on both sides, the superposed streams must
//! agree in arrival counts and window statistics (distribution-level
//! agreement; the RNG streams differ by construction).

use linkpad_core::gateway::SenderGateway;
use linkpad_core::jitter::GatewayJitterModel;
use linkpad_core::schedule::PaddingSchedule;
use linkpad_sim::cohort::{CohortJitter, FlowCohort};
use linkpad_sim::engine::SimBuilder;
use linkpad_sim::observer::WindowedObserver;
use linkpad_sim::packet::FlowId;
use linkpad_sim::tap::Tap;
use linkpad_sim::time::{SimDuration, SimTime};
use linkpad_stats::rng::MasterSeed;

const TAU: f64 = 0.010;

/// K real sender gateways at the given phases, no payload sources,
/// feeding one capture-only tap. Returns arrival timestamps in nanos.
fn gateway_fanin_arrivals(phases_ns: &[u64], jitter: GatewayJitterModel, secs: f64) -> Vec<u64> {
    let mut b = SimBuilder::new(MasterSeed::new(1));
    let (tap, node) = Tap::new(None, None);
    let tap_id = b.add_node(Box::new(node));
    for (k, &phase) in phases_ns.iter().enumerate() {
        let (_, gw) =
            SenderGateway::new(tap_id, PaddingSchedule::cit(TAU).expect("cit"), jitter, 500);
        b.add_node(Box::new(
            gw.with_flow(FlowId(k as u32))
                .with_start_phase(SimDuration::from_nanos(phase)),
        ));
    }
    let mut sim = b.build().expect("fan-in builds");
    sim.run_until(SimTime::from_secs_f64(secs));
    let mut ns: Vec<u64> = tap.timestamps().iter().map(|t| t.as_nanos()).collect();
    // Same-instant deliveries from distinct gateways interleave by event
    // seq; the arrival *process* is the sorted multiset.
    ns.sort_unstable();
    ns
}

/// One cohort superposing the same phases into the same tap.
fn cohort_arrivals(phases_ns: &[u64], jitter: Option<CohortJitter>, secs: f64) -> Vec<u64> {
    let mut b = SimBuilder::new(MasterSeed::new(1));
    let (tap, node) = Tap::new(None, None);
    let tap_id = b.add_node(Box::new(node));
    let phases: Vec<SimDuration> = phases_ns
        .iter()
        .map(|&p| SimDuration::from_nanos(p))
        .collect();
    let (_, mut cohort) = FlowCohort::new(tap_id, SimDuration::from_secs_f64(TAU), &phases, 500);
    if let Some(j) = jitter {
        cohort = cohort.with_jitter(j);
    }
    b.add_node(Box::new(cohort));
    let mut sim = b.build().expect("cohort builds");
    sim.run_until(SimTime::from_secs_f64(secs));
    let mut ns: Vec<u64> = tap.timestamps().iter().map(|t| t.as_nanos()).collect();
    ns.sort_unstable();
    ns
}

#[test]
fn deterministic_cohort_matches_gateway_fanin_bit_exactly() {
    // Mixed phases including duplicates (a synchronized sub-group) and
    // an off-grid value; 2.5 s ≈ 250 periods × 5 flows.
    let phases = [0u64, 0, 2_000_000, 5_000_000, 7_300_000];
    let from_gateways = gateway_fanin_arrivals(
        &phases,
        // Zero baseline σ → no draws, zero pipeline offset: emissions at
        // exact nominal instants (blocking never triggers: no payload).
        GatewayJitterModel::new(0.0, 6e-6).expect("valid model"),
        2.5,
    );
    let from_cohort = cohort_arrivals(&phases, None, 2.5);
    assert!(!from_gateways.is_empty());
    assert_eq!(
        from_cohort, from_gateways,
        "cohort superposition must reproduce the K-gateway arrival process \
         to the nanosecond"
    );
    // Sanity on the shape: first arrivals at τ (the two phase-0 flows),
    // then 5 per period.
    assert_eq!(from_gateways[0], 10_000_000);
    assert_eq!(from_gateways[1], 10_000_000);
    assert!(from_gateways.len() >= 5 * 248);
}

#[test]
fn jittered_cohort_matches_gateway_fanin_in_distribution() {
    let phases: Vec<u64> = (0..16).map(|k| k * 600_000).collect();
    let jitter = GatewayJitterModel::calibrated();
    let from_gateways = gateway_fanin_arrivals(&phases, jitter, 4.0);
    let from_cohort = cohort_arrivals(
        &phases,
        Some(CohortJitter {
            base_sigma: jitter.base_sigma,
            blocking_mean: jitter.blocking_mean,
            arrival_prob: 0.0, // no payload on either side
        }),
        4.0,
    );
    // Ticks never vanish: both sides emit one packet per flow per period
    // (the last period's packets may straddle the run bound ±K).
    assert!(
        from_gateways.len().abs_diff(from_cohort.len()) <= phases.len(),
        "{} vs {}",
        from_gateways.len(),
        from_cohort.len()
    );
    // Window counts agree exactly away from the boundary: µs jitter
    // cannot move an arrival across 100 ms windows.
    let window_counts = |ns: &[u64]| {
        let mut counts = vec![0u64; 40];
        for &t in ns {
            let w = (t / 100_000_000) as usize;
            if w < counts.len() {
                counts[w] += 1;
            }
        }
        counts
    };
    let gw_counts = window_counts(&from_gateways);
    let co_counts = window_counts(&from_cohort);
    assert_eq!(gw_counts[..39], co_counts[..39]);
}

#[test]
fn observer_view_of_cohort_matches_gateway_fanin() {
    // End-to-end through the windowed observer: the instrument the
    // aggregate adversary actually reads.
    let phases = [0u64, 1_000_000, 4_000_000, 9_999_999];
    let run = |use_cohort: bool| {
        let mut b = SimBuilder::new(MasterSeed::new(3));
        let (obs, node) = WindowedObserver::new(SimDuration::from_millis_f64(50.0), None);
        let obs_id = b.add_node(Box::new(node));
        if use_cohort {
            let sd: Vec<SimDuration> = phases.iter().map(|&p| SimDuration::from_nanos(p)).collect();
            let (_, cohort) = FlowCohort::new(obs_id, SimDuration::from_secs_f64(TAU), &sd, 500);
            b.add_node(Box::new(cohort));
        } else {
            for (k, &phase) in phases.iter().enumerate() {
                let (_, gw) = SenderGateway::new(
                    obs_id,
                    PaddingSchedule::cit(TAU).expect("cit"),
                    GatewayJitterModel::new(0.0, 6e-6).expect("valid"),
                    500,
                );
                b.add_node(Box::new(
                    gw.with_flow(FlowId(k as u32))
                        .with_start_phase(SimDuration::from_nanos(phase)),
                ));
            }
        }
        let mut sim = b.build().expect("builds");
        sim.run_until(SimTime::from_secs_f64(3.0));
        obs
    };
    let gw_obs = run(false);
    let co_obs = run(true);
    assert_eq!(co_obs.arrivals(), gw_obs.arrivals());
    assert_eq!(co_obs.counts(), gw_obs.counts());
    // Same nominal instants → same inter-arrival populations per window.
    assert_eq!(
        co_obs.window_series(),
        gw_obs.window_series(),
        "full window statistics agree bit-for-bit in the deterministic regime"
    );
}
