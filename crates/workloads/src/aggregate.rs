//! Many-gateway aggregate workload: N padded flows on one trunk.
//!
//! The paper studies a single gateway pair; aggregate-traffic analyses
//! (throughput fingerprinting, messaging-app traffic analysis) study an
//! adversary who taps an *aggregated* link carrying many padded flows at
//! once. This module opens that regime end to end:
//!
//! ```text
//!  src_0 → GW1_0 → [tap@gw1] ─┐                ┌─ [tap@gw2] → GW2_0 → sink
//!  src_1 → GW1_1 ─────────────┤                ├─ GW2_1
//!   ...                       ├→ trunk router ─┤   ...      (per-flow
//!  src_N → GW1_N ─────────────┘   [trunk tap]  └─ GW2_N      demux)
//! ```
//!
//! Every flow `i` runs its own CIT/VIT padding gateway pair under
//! `FlowId(i)`; all sender gateways feed one shared **trunk** (a FIFO
//! router with configurable capacity and propagation). A **trunk tap**
//! (no flow filter) records the aggregate arrival process — the
//! adversary's view of the shared link — and a [`TrunkDemux`] fans the
//! flows back out so the adversary pipeline (and QoS accounting) can
//! also observe any single flow post-trunk. Flow 0 is the fully
//! instrumented *target* flow: it keeps the lab scenario's sender-egress
//! and receiver-ingress taps, so [`TapPosition`](crate::scenario::TapPosition)
//! semantics carry over unchanged.
//!
//! With thousands of gateways and a long-haul trunk, hundreds of
//! thousands of events (gateway ticks, source arrivals, in-flight trunk
//! packets) are pending at any instant — the store-bound regime the
//! ladder event queue was built for, as a real scenario rather than a
//! microbench.

use crate::scenario::{AggregateHandles, BuiltScenario, ScenarioBuilder, ScenarioError};
use linkpad_core::gateway::{ReceiverGateway, SenderGateway};
use linkpad_sim::engine::{Context, SimBuilder};
use linkpad_sim::node::{Node, NodeId};
use linkpad_sim::packet::{FlowId, Packet, PacketKind};
use linkpad_sim::router::Router;
use linkpad_sim::sink::Sink;
use linkpad_sim::source::DistSource;
use linkpad_sim::tap::Tap;
use linkpad_sim::time::SimDuration;
use linkpad_stats::rng::MasterSeed;

/// Configuration of the aggregate (many-gateway trunk) topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateSpec {
    /// Number of padded flows (sender/receiver gateway pairs). Each flow
    /// `i` is carried as `FlowId(i)`; flow 0 is the instrumented target.
    pub flows: usize,
    /// Trunk link capacity, bits/s.
    pub trunk_bps: f64,
    /// Trunk propagation delay, seconds. Long-haul trunks keep many
    /// packets in flight: the steady-state pending-event population is
    /// roughly `flows × (2 + propagation/τ)`.
    pub trunk_propagation: f64,
}

impl AggregateSpec {
    /// Defaults for `flows` gateway pairs: a 10 Gb/s metro trunk with
    /// 5 ms propagation. At the calibrated τ = 10 ms padding clock each
    /// flow offers 400 kb/s, so utilization stays moderate up to ~10⁴
    /// flows.
    pub fn new(flows: usize) -> Self {
        Self {
            flows,
            trunk_bps: 10e9,
            trunk_propagation: 5e-3,
        }
    }
}

/// Per-flow fan-out after the trunk: routes `FlowId(i)` to `nexts[i]`.
///
/// The generalization of [`crate::demux::FlowDemux`] from two-way
/// (padded/other) to N-way; aggregate scenarios use it to peel every
/// padded flow off the shared trunk toward its own receiver gateway.
#[derive(Debug)]
pub struct TrunkDemux {
    nexts: Vec<NodeId>,
    forwarded: u64,
    unknown: u64,
}

impl TrunkDemux {
    /// A demux routing flow `i` to `nexts[i]`.
    pub fn new(nexts: Vec<NodeId>) -> Self {
        Self {
            nexts,
            forwarded: 0,
            unknown: 0,
        }
    }

    /// Packets forwarded to a per-flow branch.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Packets whose flow id had no branch (dropped).
    pub fn unknown(&self) -> u64 {
        self.unknown
    }
}

impl Node for TrunkDemux {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        match self.nexts.get(packet.flow.0 as usize) {
            Some(&next) => {
                self.forwarded += 1;
                ctx.send_now(next, packet);
            }
            None => self.unknown += 1,
        }
    }

    fn reset(&mut self) {
        self.forwarded = 0;
        self.unknown = 0;
    }

    fn label(&self) -> &str {
        "trunk-demux"
    }
}

/// Materialize the aggregate topology for `builder` (its payload,
/// schedule, discipline and calibrated defaults apply to **every**
/// flow; each flow draws from its own RNG streams, so flows are
/// statistically independent replicas).
pub(crate) fn build_aggregate(
    builder: &ScenarioBuilder,
    spec: AggregateSpec,
) -> Result<BuiltScenario, ScenarioError> {
    if spec.flows == 0 {
        return Err(ScenarioError::EmptyAggregate);
    }
    let d = builder.defaults;
    let mut b = SimBuilder::new(MasterSeed::new(builder.seed()));

    // Receiver side, flow 0 (the instrumented target): sink ← GW2 ← tap.
    let (payload_sink, sink) = Sink::new();
    let sink_id = b.add_node(Box::new(sink.with_label("subnet-b")));
    let (receiver, gw2) = ReceiverGateway::new(Some(sink_id));
    let gw2_id = b.add_node(Box::new(gw2));
    let (receiver_tap, rtap) = Tap::on_padded_flow(Some(gw2_id));
    let rtap_id = b.add_node(Box::new(rtap.with_label("tap@gw2")));

    // Receiver side, flows 1..N: a terminating gateway each.
    let mut receivers = Vec::with_capacity(spec.flows);
    receivers.push(receiver.clone());
    let mut demux_nexts = Vec::with_capacity(spec.flows);
    demux_nexts.push(rtap_id);
    for i in 1..spec.flows {
        let (r, gw2_i) = ReceiverGateway::new(None);
        let id = b.add_node(Box::new(gw2_i.with_flow(FlowId(i as u32))));
        receivers.push(r);
        demux_nexts.push(id);
    }

    // The shared trunk: router → trunk tap (aggregate view) → demux.
    let demux_id = b.add_node(Box::new(TrunkDemux::new(demux_nexts)));
    let (trunk_tap, ttap) = Tap::new(None, Some(demux_id));
    let ttap_id = b.add_node(Box::new(ttap.with_label("tap@trunk")));
    let trunk_id = b.add_node(Box::new(
        Router::new(
            ttap_id,
            spec.trunk_bps,
            SimDuration::from_secs_f64(spec.trunk_propagation),
        )
        .with_label("trunk"),
    ));

    // Sender side: flow 0 through its egress tap, the rest straight in.
    let (sender_tap, stap) = Tap::on_padded_flow(Some(trunk_id));
    let stap_id = b.add_node(Box::new(stap.with_label("tap@gw1")));
    let mut gateways = Vec::with_capacity(spec.flows);
    for i in 0..spec.flows {
        let flow = FlowId(i as u32);
        let first_hop = if i == 0 { stap_id } else { trunk_id };
        let (gw, gw1) = SenderGateway::new(
            first_hop,
            builder.schedule().to_schedule(d.tau)?,
            d.jitter,
            d.packet_size,
        );
        let gw1_id = b.add_node(Box::new(
            gw1.with_discipline(builder.discipline())
                .with_flow(flow)
                .with_label(format!("gw1-{i}")),
        ));
        gateways.push(gw);
        b.add_node(Box::new(DistSource::new(
            gw1_id,
            flow,
            PacketKind::Payload,
            builder.payload().interval_law()?,
            Box::new(linkpad_stats::dist::Deterministic::new(
                d.packet_size as f64,
            )?),
        )));
    }

    let sim = b.build()?;
    Ok(BuiltScenario {
        sim,
        sender_tap,
        receiver_tap,
        gateway: gateways[0].clone(),
        receiver: receivers[0].clone(),
        payload_sink,
        aggregate: Some(AggregateHandles {
            trunk_tap,
            gateways,
            receivers,
        }),
        tau: d.tau,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TapPosition;
    use linkpad_stats::moments::{sample_mean, sample_variance};

    #[test]
    fn aggregate_builds_and_collects_target_flow_piats() {
        let b = ScenarioBuilder::aggregate(1, 16).with_payload_rate(10.0);
        let mut s = b.build().unwrap();
        let piats = s
            .collect_piats(TapPosition::SenderEgress, 1000, 50)
            .unwrap();
        assert_eq!(piats.len(), 1000);
        let m = sample_mean(&piats).unwrap();
        // Flow 0's egress is still a τ-clocked padded stream.
        assert!((m - 0.010).abs() < 1e-5, "mean {m}");
        let sd = sample_variance(&piats).unwrap().sqrt();
        assert!(sd > 1e-7 && sd < 100e-6, "sd {sd}");
    }

    #[test]
    fn trunk_tap_sees_all_flows_and_demux_separates_them() {
        let flows = 8;
        let b = ScenarioBuilder::aggregate(2, flows).with_payload_rate(10.0);
        let mut s = b.build().unwrap();
        s.run_for_secs(5.0);
        let agg = s.aggregate.as_ref().unwrap();
        // Every gateway ticks at ~100 pps; the trunk tap sees the union.
        let per_flow = s.sender_tap.count() as f64;
        let trunk = agg.trunk_tap.count() as f64;
        assert!(
            (trunk / per_flow - flows as f64).abs() < 0.1 * flows as f64,
            "trunk {trunk} vs per-flow {per_flow}"
        );
        // Post-demux, flow 0's tap is a clean single-flow stream again.
        assert!(s.receiver_tap.count() > 400);
        let (_, _, cross) = s.receiver_tap.kind_counts();
        assert_eq!(cross, 0);
        // Every receiver terminates only its own flow.
        for (i, r) in agg.receivers.iter().enumerate() {
            assert_eq!(r.unexpected(), 0, "receiver {i} saw foreign traffic");
            assert!(
                r.payload_delivered() + r.dummies_stripped() > 400,
                "receiver {i} starved"
            );
        }
    }

    #[test]
    fn aggregate_receiver_gets_all_payload_per_flow() {
        let b = ScenarioBuilder::aggregate(3, 4).with_payload_rate(40.0);
        let mut s = b.build().unwrap();
        s.run_for_secs(10.0);
        let agg = s.aggregate.as_ref().unwrap();
        for (gw, rx) in agg.gateways.iter().zip(&agg.receivers) {
            // Everything sent is delivered, minus at most a couple in
            // flight over the 5 ms trunk.
            assert!(gw.payload_sent() >= 395, "sent {}", gw.payload_sent());
            assert!(gw.payload_sent() - rx.payload_delivered() <= 2);
            assert!(gw.dummy_sent() - rx.dummies_stripped() <= 2);
        }
        assert_eq!(
            s.payload_sink.count() as u64,
            agg.receivers[0].payload_delivered()
        );
    }

    #[test]
    fn empty_aggregate_is_a_build_error() {
        let b = ScenarioBuilder::aggregate(4, 0);
        assert!(matches!(b.build(), Err(ScenarioError::EmptyAggregate)));
    }

    #[test]
    fn trunk_demux_counts_unknown_flows() {
        use linkpad_sim::time::SimTime;
        let mut b = SimBuilder::new(MasterSeed::new(5));
        let (h, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let demux_id = b.add_node(Box::new(TrunkDemux::new(vec![sink_id])));
        // Flow 0 routes, flow 7 has no branch.
        for (flow, period) in [(0u32, 0.010), (7u32, 0.004)] {
            b.add_node(Box::new(DistSource::new(
                demux_id,
                FlowId(flow),
                PacketKind::Dummy,
                Box::new(linkpad_stats::dist::Deterministic::new(period).unwrap()),
                Box::new(linkpad_stats::dist::Deterministic::new(500.0).unwrap()),
            )));
        }
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(h.count(), 100);
    }
}
