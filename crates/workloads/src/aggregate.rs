//! Many-gateway aggregate workload: N padded flows on one trunk.
//!
//! The paper studies a single gateway pair; aggregate-traffic analyses
//! (throughput fingerprinting, messaging-app traffic analysis) study an
//! adversary who taps an *aggregated* link carrying many padded flows at
//! once. This module opens that regime end to end:
//!
//! ```text
//!  src_0 → GW1_0 → [tap@gw1] ─┐                ┌─ [tap@gw2] → GW2_0 → sink
//!  src_1 → GW1_1 ─────────────┤                ├─ GW2_1
//!   ...                       ├→ trunk router ─┤   ...      (per-flow
//!  src_N → GW1_N ─────────────┘   [trunk tap]  └─ GW2_N      demux)
//! ```
//!
//! Every flow `i` runs its own CIT/VIT padding gateway pair under
//! `FlowId(i)`; all sender gateways feed one shared **trunk** (a FIFO
//! router with configurable capacity and propagation). A **trunk tap**
//! (no flow filter) records the aggregate arrival process — the
//! adversary's view of the shared link — and a [`TrunkDemux`] fans the
//! flows back out so the adversary pipeline (and QoS accounting) can
//! also observe any single flow post-trunk. Flow 0 is the fully
//! instrumented *target* flow: it keeps the lab scenario's sender-egress
//! and receiver-ingress taps, so [`TapPosition`](crate::scenario::TapPosition)
//! semantics carry over unchanged.
//!
//! With thousands of gateways and a long-haul trunk, hundreds of
//! thousands of events (gateway ticks, source arrivals, in-flight trunk
//! packets) are pending at any instant — the store-bound regime the
//! ladder event queue was built for, as a real scenario rather than a
//! microbench.

use crate::scenario::{AggregateHandles, BuiltScenario, ScenarioBuilder, ScenarioError};
use crate::switching::SwitchingSource;
use linkpad_core::gateway::{ReceiverGateway, SenderGateway};
use linkpad_core::schedule::{AdaptiveCohortSchedule, LinkSchedule};
use linkpad_sim::cohort::{
    CohortHandle, CohortJitter, FlowCohort, LawSchedule, MemberSchedule, COHORT_FLOW,
};
use linkpad_sim::engine::{Context, SimBuilder};
use linkpad_sim::fault::{FaultPlan, LossyGate};
use linkpad_sim::node::{Node, NodeId};
use linkpad_sim::observer::WindowedObserver;
use linkpad_sim::packet::{FlowId, Packet, PacketKind};
use linkpad_sim::router::Router;
use linkpad_sim::sink::Sink;
use linkpad_sim::source::DistSource;
use linkpad_sim::tap::Tap;
use linkpad_sim::time::SimDuration;
use linkpad_stats::rng::{splitmix64_mix, MasterSeed};
use linkpad_stats::StatsError;

/// Rate-switching drive for the target flow (flow 0) of an aggregate
/// scenario: the hidden state the aggregate-link adversary estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingSpec {
    /// The two payload rates (pps) the target alternates between,
    /// starting with `rates[0]`.
    pub rates: [f64; 2],
    /// Dwell time at each rate, seconds.
    pub dwell_secs: f64,
}

/// How the padding-clock start phases of an aggregate's flows are laid
/// out — the desynchronized-clock knob from the ROADMAP. Flow k's
/// gateway (or cohort member) starts its clock at the given offset, so
/// its ticks sit at `phase + j·τ`; the phase layout decides whether the
/// trunk's per-window count variance reads `N²·f(1−f)` (synchronized,
/// perfectly correlated Bernoulli offsets) or `N·f(1−f)` (independent
/// phases) — see `linkpad_adversary::aggregate::estimator`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseSpec {
    /// Every clock starts at zero — one shared τ grid (the historical
    /// default; gateways deployed together and never restarted).
    Synchronized,
    /// Phases spread evenly over the period: stratification index `i`
    /// of a population `m` gets phase `(i/m)·τ`. In cohort mode the
    /// index is the flow's **global** within-cohort position
    /// (`(f−1) % K` over the global cohort grid) and in per-flow mode
    /// its global id over the whole population — both keyed to the
    /// flow, never to a shard-local position, so the aggregate phase
    /// multiset is identical however the population is split.
    Stratified,
    /// Independent uniform phases in `[0, τ)`, drawn per **global** flow
    /// id from a dedicated phase seed. The seed is configuration (not
    /// the scenario's master seed), so rebuilding or reseeding a
    /// topology never re-randomizes the clock layout — `reset()` and
    /// `build()` stay bit-identical.
    Uniform {
        /// Phase-layout seed (configuration, independent of run seeds).
        seed: u64,
    },
}

impl PhaseSpec {
    /// The clock start phase of one flow, in seconds (always `< tau`).
    ///
    /// `flow` is the global flow id (drives [`PhaseSpec::Uniform`]);
    /// `index`/`modulus` are the stratification position and population
    /// (member-within-cohort for cohorts, global-flow-within-aggregate
    /// for real gateway pairs).
    pub fn phase_secs(&self, flow: usize, index: usize, modulus: usize, tau: f64) -> f64 {
        match *self {
            PhaseSpec::Synchronized => 0.0,
            PhaseSpec::Stratified => {
                let m = modulus.max(1);
                (index % m) as f64 / m as f64 * tau
            }
            PhaseSpec::Uniform { seed } => {
                let word = splitmix64_mix(seed ^ (flow as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                // 53-bit uniform in [0, 1) → phase strictly below τ.
                (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * tau
            }
        }
    }
}

/// Configuration of the aggregate (many-gateway trunk) topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateSpec {
    /// Number of padded flows (sender/receiver gateway pairs). Each flow
    /// `i` is carried as `FlowId(i)`; flow 0 is the instrumented target.
    pub flows: usize,
    /// Trunk link capacity, bits/s.
    pub trunk_bps: f64,
    /// Trunk propagation delay, seconds. Long-haul trunks keep many
    /// packets in flight: the steady-state pending-event population is
    /// roughly `flows × (2 + propagation/τ)`.
    pub trunk_propagation: f64,
    /// Width (seconds) of the streaming trunk observer's windows. When
    /// set, a [`WindowedObserver`] replaces the store-everything trunk
    /// tap — `O(windows)` memory instead of `O(arrivals)` — and the
    /// aggregate view lives in
    /// [`AggregateHandles::trunk_observer`](crate::scenario::AggregateHandles).
    pub observer_window: Option<f64>,
    /// When set, flow 0's payload is driven by a rate-switching source
    /// instead of the builder's payload law; the ground-truth switch log
    /// lands in
    /// [`AggregateHandles::target_rate_log`](crate::scenario::AggregateHandles).
    pub switching: Option<SwitchingSpec>,
    /// When set, flows other than the instrumented target are simulated
    /// as [`FlowCohort`]s of up to this many flows each — one node and
    /// one pending timer per cohort instead of per flow — which is what
    /// takes the family from ~10⁴ to 10⁶ flows. Requires the CIT
    /// schedule (the superposition is exact only for CIT; see
    /// `linkpad_sim::cohort`). The cohorts' wire traffic carries
    /// [`COHORT_FLOW`] and is absorbed at the trunk demux; QoS
    /// instrumentation exists only for the target flow.
    pub cohort_size: Option<usize>,
    /// Padding-clock phase layout across the flow population.
    pub phases: PhaseSpec,
    /// Restrict the built topology to the global flow sub-population
    /// `[start, start+count)` — the sharded-execution plumbing
    /// ([`crate::shard::ShardedAggregate`] gives each worker sub-sim one
    /// range). The instrumented target exists only in the range
    /// containing flow 0; other ranges build observer-only shards whose
    /// target handles read zero.
    pub flow_range: Option<(usize, usize)>,
    /// Fault injection: trunk loss/outages (a [`LossyGate`] in front of
    /// the trunk) and observer measurement gaps. `None` — and plans
    /// with no trunk axes set — add no gate node, so the fault-free
    /// path costs nothing.
    pub faults: Option<FaultPlan>,
}

impl AggregateSpec {
    /// Defaults for `flows` gateway pairs: a 10 Gb/s metro trunk with
    /// 5 ms propagation. At the calibrated τ = 10 ms padding clock each
    /// flow offers 400 kb/s, so utilization stays moderate up to ~10⁴
    /// flows. The trunk instrument defaults to the store-everything tap
    /// and flow 0 to the builder's payload law.
    pub fn new(flows: usize) -> Self {
        Self {
            flows,
            trunk_bps: 10e9,
            trunk_propagation: 5e-3,
            observer_window: None,
            switching: None,
            cohort_size: None,
            phases: PhaseSpec::Synchronized,
            flow_range: None,
            faults: None,
        }
    }
}

/// Per-flow fan-out after the trunk: routes `FlowId(i)` to `nexts[i]`.
///
/// The generalization of [`crate::demux::FlowDemux`] from two-way
/// (padded/other) to N-way; aggregate scenarios use it to peel every
/// padded flow off the shared trunk toward its own receiver gateway.
///
/// Every flow on the trunk **must** have a branch: an unknown `FlowId`
/// is a topology wiring bug (a source feeding the trunk that the
/// builder never gave a receiver), and silently dropping its packets
/// would skew QoS and overhead accounting without a trace. The demux
/// therefore panics on unknown flows, in the same fail-loudly-at-the-
/// source spirit as `SimBuilder::install`.
///
/// Two extensions serve the cohort/shard family: a **base** offset so a
/// shard carrying global flows `[base, base+n)` indexes its branch table
/// locally, and an **absorb** flow id terminated in place — cohort
/// traffic has been observed by the trunk instrument and has no
/// receiver, and absorbing it here (counted) saves one event per packet
/// at million-flow scale.
#[derive(Debug)]
pub struct TrunkDemux {
    nexts: Vec<NodeId>,
    base: usize,
    absorb: Option<FlowId>,
    forwarded: u64,
    absorbed: u64,
}

impl TrunkDemux {
    /// A demux routing flow `i` to `nexts[i]`.
    pub fn new(nexts: Vec<NodeId>) -> Self {
        Self {
            nexts,
            base: 0,
            absorb: None,
            forwarded: 0,
            absorbed: 0,
        }
    }

    /// Route global flow `base + i` to `nexts[i]` (shard plumbing).
    pub fn with_base(mut self, base: usize) -> Self {
        self.base = base;
        self
    }

    /// Terminate packets of this flow id in place (counted), instead of
    /// requiring a branch — the cohort-traffic sink.
    pub fn with_absorb(mut self, flow: FlowId) -> Self {
        self.absorb = Some(flow);
        self
    }

    /// Packets forwarded to a per-flow branch.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Packets terminated by the absorb rule.
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// The branch for a packet, or `None` for absorbed traffic.
    #[inline]
    fn branch(&self, packet: &Packet) -> Option<NodeId> {
        if self.absorb == Some(packet.flow) {
            return None;
        }
        let local = (packet.flow.0 as usize).checked_sub(self.base);
        match local.and_then(|i| self.nexts.get(i)) {
            Some(&next) => Some(next),
            None => panic!(
                "trunk demux: no branch for flow {} ({} branches wired at base {}) — \
                 every flow on the trunk must have a receiver",
                packet.flow.0,
                self.nexts.len(),
                self.base,
            ),
        }
    }
}

impl Node for TrunkDemux {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        match self.branch(&packet) {
            Some(next) => {
                self.forwarded += 1;
                ctx.send_now(next, packet);
            }
            None => self.absorbed += 1,
        }
    }

    fn on_packets(&mut self, packets: &mut Vec<Packet>, ctx: &mut Context<'_>) {
        // Burst path: at cohort scale a whole period's emissions arrive
        // as one same-instant batch, and almost all of it absorbs.
        for packet in packets.drain(..) {
            match self.branch(&packet) {
                Some(next) => {
                    self.forwarded += 1;
                    ctx.send_now(next, packet);
                }
                None => self.absorbed += 1,
            }
        }
    }

    fn reset(&mut self) {
        self.forwarded = 0;
        self.absorbed = 0;
    }

    fn label(&self) -> &str {
        "trunk-demux"
    }
}

/// Materialize the aggregate topology for `builder` (its payload,
/// schedule, discipline and calibrated defaults apply to **every**
/// flow; each flow draws from its own RNG streams, so flows are
/// statistically independent replicas).
///
/// With [`AggregateSpec::cohort_size`] set, flows other than the target
/// are grouped into [`FlowCohort`]s; with
/// [`AggregateSpec::flow_range`] set, only that global sub-population is
/// built (shard plumbing). Ranges that exclude flow 0 produce
/// observer-only shards: the target-flow scaffold handles exist so
/// [`BuiltScenario`]'s shape is uniform, but no target nodes are wired
/// and their counters stay zero.
pub(crate) fn build_aggregate(
    builder: &ScenarioBuilder,
    spec: AggregateSpec,
) -> Result<BuiltScenario, ScenarioError> {
    if spec.flows == 0 {
        return Err(ScenarioError::EmptyAggregate);
    }
    if let Some(sw) = spec.switching {
        for r in sw.rates {
            if !(r.is_finite() && r > 0.0) {
                return Err(ScenarioError::Stats(StatsError::NonPositive {
                    what: "switching target rate",
                    value: r,
                }));
            }
        }
        if !(sw.dwell_secs.is_finite() && sw.dwell_secs > 0.0) {
            return Err(ScenarioError::Stats(StatsError::NonPositive {
                what: "switching dwell",
                value: sw.dwell_secs,
            }));
        }
    }
    if let Some(w) = spec.observer_window {
        if !(w.is_finite() && w > 0.0) {
            return Err(ScenarioError::Stats(StatsError::NonPositive {
                what: "observer window",
                value: w,
            }));
        }
    }
    let (start, count) = spec.flow_range.unwrap_or((0, spec.flows));
    if count == 0 || start.checked_add(count).is_none_or(|end| end > spec.flows) {
        return Err(ScenarioError::InvalidFlowRange {
            start,
            count,
            flows: spec.flows,
        });
    }
    if let Some(k) = spec.cohort_size {
        if k == 0 {
            return Err(ScenarioError::EmptyCohort);
        }
        if let Err(reason) = builder.schedule().cohort_support() {
            return Err(ScenarioError::CohortUnsupported {
                schedule: builder.schedule().name(),
                reason,
            });
        }
    }
    if let Some(plan) = spec.faults {
        plan.validate().map_err(ScenarioError::InvalidFaultPlan)?;
    }
    // Validate the payload law up front: a cohort-only shard builds no
    // payload source, but a misconfigured rate must still fail loudly.
    drop(builder.payload().interval_law()?);

    let has_target = start == 0;
    let d = builder.defaults;
    let tau = d.tau;
    let mut b = SimBuilder::new(MasterSeed::new(builder.seed()));

    // Receiver side, flow 0 (the instrumented target): sink ← GW2 ← tap.
    // Observer-only shards (ranges excluding flow 0) keep the handles —
    // constructed, never wired — so every shard exposes the same
    // `BuiltScenario` shape with zeroed target instrumentation.
    let mut demux_nexts: Vec<NodeId> = Vec::new();
    let (payload_sink, receiver, receiver_tap) = if has_target {
        let (payload_sink, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink.with_label("subnet-b")));
        let (receiver, gw2) = ReceiverGateway::new(Some(sink_id));
        let gw2_id = b.add_node(Box::new(gw2));
        let (receiver_tap, rtap) = Tap::on_padded_flow(Some(gw2_id));
        let rtap_id = b.add_node(Box::new(rtap.with_label("tap@gw2")));
        demux_nexts.push(rtap_id);
        (payload_sink, receiver, receiver_tap)
    } else {
        let (payload_sink, _sink) = Sink::new();
        let (receiver, _gw2) = ReceiverGateway::new(None);
        let (receiver_tap, _rtap) = Tap::on_padded_flow(None);
        (payload_sink, receiver, receiver_tap)
    };

    // Receiver side, non-target flows: a terminating gateway each in the
    // per-flow mode; absorbed at the demux in cohort mode.
    let mut receivers = Vec::new();
    if has_target {
        receivers.push(receiver.clone());
    }
    if spec.cohort_size.is_none() {
        for f in start.max(1)..start + count {
            let (r, gw2_f) = ReceiverGateway::new(None);
            let id = b.add_node(Box::new(gw2_f.with_flow(FlowId(f as u32))));
            receivers.push(r);
            demux_nexts.push(id);
        }
    }

    // The shared trunk: router → aggregate instrument → demux. The
    // instrument is the adversary's view of the shared link: either the
    // store-everything tap (default; pre-sized so the first ~0.64 s of
    // τ-clocked aggregate traffic never reallocates — see the memory
    // model in `Tap`'s docs — with the pre-size capped at 10⁶ captures
    // so cohort-scale populations don't pre-commit gigabytes) or, for
    // long/huge runs, the streaming windowed observer in O(windows)
    // memory.
    let mut demux = TrunkDemux::new(demux_nexts).with_base(start);
    if spec.cohort_size.is_some() {
        demux = demux.with_absorb(COHORT_FLOW);
    }
    let demux_id = b.add_node(Box::new(demux));
    let (trunk_tap, trunk_observer, instrument_id) = match spec.observer_window {
        Some(window) => {
            let (obs, mut node) =
                WindowedObserver::new(SimDuration::from_secs_f64(window), Some(demux_id));
            // Measurement gaps: the observer goes blind on the gap
            // schedule's down intervals and stamps per-window coverage.
            if let Some(gaps) = spec.faults.and_then(|p| p.observer_gaps) {
                node = node.with_gaps(gaps);
            }
            let id = b.add_node(Box::new(node.with_label("observer@trunk")));
            (None, Some(obs), id)
        }
        None => {
            let (tap, node) = Tap::new(None, Some(demux_id));
            let id = b.add_node(Box::new(
                node.with_capacity((count * 64).min(1_000_000))
                    .with_label("tap@trunk"),
            ));
            (Some(tap), None, id)
        }
    };
    let trunk_id = b.add_node(Box::new(
        Router::new(
            instrument_id,
            spec.trunk_bps,
            SimDuration::from_secs_f64(spec.trunk_propagation),
        )
        .with_label("trunk"),
    ));

    // Trunk faults: a lossy gate at the trunk's ingress, so every flow's
    // traffic — target, per-flow gateways, cohorts — crosses it before
    // serialization. Fault-free plans add no node at all: the sender
    // side targets the trunk directly and the hot path is untouched.
    let (fault_gate, trunk_ingress) = match spec.faults.filter(|p| p.affects_trunk()) {
        Some(plan) => {
            let (handle, gate) =
                LossyGate::new(trunk_id, plan.trunk_loss, plan.trunk_outage, plan.seed);
            let gate_id = b.add_node(Box::new(gate.with_label("fault-gate@trunk")));
            (Some(handle), gate_id)
        }
        None => (None, trunk_id),
    };

    // Sender side: the target flow through its egress tap, everything
    // else straight into the trunk. Clock phases spread over the
    // schedule's emission period (τ for the timer families, 1/rate for
    // constant-rate, the stationary mean for adaptive padding) so
    // cohorts and real gateway pairs lay their clocks out identically.
    let period = builder.schedule().mean_interval(tau);
    let mut gateways = Vec::new();
    let mut cohorts: Vec<CohortHandle> = Vec::new();
    let mut target_rate_log = None;
    let (sender_tap, gateway) = if has_target {
        let (sender_tap, stap) = Tap::on_padded_flow(Some(trunk_ingress));
        let stap_id = b.add_node(Box::new(stap.with_label("tap@gw1")));
        let phase = spec.phases.phase_secs(0, 0, spec.flows, period);
        let (gw, gw1) = SenderGateway::new(
            stap_id,
            builder.schedule().to_schedule(tau)?,
            d.jitter,
            d.packet_size,
        );
        let mut gw1 = gw1
            .with_discipline(builder.discipline())
            .with_flow(FlowId(0))
            .with_start_phase(SimDuration::from_secs_f64(phase))
            .with_label("gw1-0");
        if let Some(law) = builder.payload_model().size_law(d.packet_size)? {
            gw1 = gw1.with_packet_size_law(law);
        }
        let gw1_id = b.add_node(Box::new(gw1));
        // The target optionally runs the rate-switching drive (the
        // hidden state the aggregate adversary estimates); without a
        // switching spec it follows the builder's payload law.
        match spec.switching {
            Some(sw) => {
                let (log, src) = SwitchingSource::new(
                    gw1_id,
                    sw.rates,
                    SimDuration::from_secs_f64(sw.dwell_secs),
                    d.packet_size,
                );
                target_rate_log = Some(log);
                b.add_node(Box::new(src));
            }
            None => {
                b.add_node(Box::new(DistSource::new(
                    gw1_id,
                    FlowId(0),
                    PacketKind::Payload,
                    builder.payload().interval_law()?,
                    Box::new(linkpad_stats::dist::Deterministic::new(
                        d.packet_size as f64,
                    )?),
                )));
            }
        }
        gateways.push(gw.clone());
        (sender_tap, gw)
    } else {
        let (sender_tap, _stap) = Tap::on_padded_flow(None);
        let (gw, _gw1) = SenderGateway::new(
            trunk_ingress,
            builder.schedule().to_schedule(tau)?,
            d.jitter,
            d.packet_size,
        );
        (sender_tap, gw)
    };

    match spec.cohort_size {
        // Per-flow mode: a real gateway pair and payload source per flow.
        None => {
            for f in start.max(1)..start + count {
                let flow = FlowId(f as u32);
                let phase = spec.phases.phase_secs(f, f, spec.flows, period);
                let (gw, gw1) = SenderGateway::new(
                    trunk_ingress,
                    builder.schedule().to_schedule(tau)?,
                    d.jitter,
                    d.packet_size,
                );
                let mut gw1 = gw1
                    .with_discipline(builder.discipline())
                    .with_flow(flow)
                    .with_start_phase(SimDuration::from_secs_f64(phase))
                    .with_label(format!("gw1-{f}"));
                if let Some(law) = builder.payload_model().size_law(d.packet_size)? {
                    gw1 = gw1.with_packet_size_law(law);
                }
                let gw1_id = b.add_node(Box::new(gw1));
                gateways.push(gw);
                b.add_node(Box::new(DistSource::new(
                    gw1_id,
                    flow,
                    PacketKind::Payload,
                    builder.payload().interval_law()?,
                    Box::new(linkpad_stats::dist::Deterministic::new(
                        d.packet_size as f64,
                    )?),
                )));
            }
        }
        // Cohort mode: non-target flows grouped K at a time into
        // superposition nodes. Grouping and stratification are keyed to
        // each flow's **global** member position (flow f is member
        // `f − 1`; global cohort id `(f − 1)/K`, within-cohort index
        // `(f − 1) % K`), never to the shard-local chunk position — so a
        // flow's phase, and therefore the merged arrival multiset, is
        // identical no matter how the population is split over shards
        // (shard boundaries merely create partial cohorts at the edges).
        // The payload's only wire-visible effect under CIT is the
        // per-tick interrupt-blocking delay, carried by the cohort
        // jitter's Bernoulli arrival probability p = rate·τ (the paper's
        // sub-unit-rate regime; see DESIGN.md).
        Some(k) => {
            let jitter = CohortJitter {
                base_sigma: d.jitter.base_sigma,
                blocking_mean: d.jitter.blocking_mean,
                arrival_prob: (builder.payload().rate() * tau).clamp(0.0, 1.0),
            };
            // Deterministic schedules (CIT, constant-rate) run the exact
            // comb at the schedule's own emission period; stochastic
            // schedules run the per-member heap, with phases spread over
            // the same period in both modes.
            let deterministic = builder.schedule().is_deterministic();
            let mut group: Vec<SimDuration> = Vec::with_capacity(k);
            let mut group_id = None;
            let mut flush = |group: &mut Vec<SimDuration>,
                             group_id: &mut Option<usize>,
                             b: &mut SimBuilder|
             -> Result<(), ScenarioError> {
                let Some(g) = group_id.take() else {
                    return Ok(());
                };
                let (h, cohort) = FlowCohort::new(
                    trunk_ingress,
                    SimDuration::from_secs_f64(period),
                    group,
                    d.packet_size,
                );
                let mut cohort = cohort.with_jitter(jitter).with_label(format!("cohort-{g}"));
                if !deterministic {
                    let sched: Box<dyn MemberSchedule> =
                        match builder.schedule().to_schedule(tau)? {
                            LinkSchedule::Law(law) => Box::new(LawSchedule::new(law.into_law())),
                            LinkSchedule::Adaptive(_) => {
                                Box::new(AdaptiveCohortSchedule::new(group.len() as u32, tau)?)
                            }
                        };
                    cohort = cohort.with_member_schedule(sched);
                }
                if let Some(law) = builder.payload_model().size_law(d.packet_size)? {
                    cohort = cohort.with_packet_size_law(law);
                }
                b.add_node(Box::new(cohort));
                cohorts.push(h);
                group.clear();
                Ok(())
            };
            for f in start.max(1)..start + count {
                let member = f - 1;
                if group_id != Some(member / k) {
                    flush(&mut group, &mut group_id, &mut b)?;
                    group_id = Some(member / k);
                }
                group.push(SimDuration::from_secs_f64(spec.phases.phase_secs(
                    f,
                    member % k,
                    k,
                    period,
                )));
            }
            flush(&mut group, &mut group_id, &mut b)?;
        }
    }

    let sim = b.build()?;
    Ok(BuiltScenario {
        sim,
        sender_tap,
        receiver_tap,
        gateway,
        receiver,
        payload_sink,
        aggregate: Some(AggregateHandles {
            trunk_tap,
            trunk_observer,
            target_rate_log,
            gateways,
            receivers,
            cohorts,
            fault_gate,
        }),
        tau,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TapPosition;
    use linkpad_stats::moments::{sample_mean, sample_variance};

    #[test]
    fn aggregate_builds_and_collects_target_flow_piats() {
        let b = ScenarioBuilder::aggregate(1, 16).with_payload_rate(10.0);
        let mut s = b.build().unwrap();
        let piats = s
            .collect_piats(TapPosition::SenderEgress, 1000, 50)
            .unwrap();
        assert_eq!(piats.len(), 1000);
        let m = sample_mean(&piats).unwrap();
        // Flow 0's egress is still a τ-clocked padded stream.
        assert!((m - 0.010).abs() < 1e-5, "mean {m}");
        let sd = sample_variance(&piats).unwrap().sqrt();
        assert!(sd > 1e-7 && sd < 100e-6, "sd {sd}");
    }

    #[test]
    fn trunk_tap_sees_all_flows_and_demux_separates_them() {
        let flows = 8;
        let b = ScenarioBuilder::aggregate(2, flows).with_payload_rate(10.0);
        let mut s = b.build().unwrap();
        s.run_for_secs(5.0);
        let agg = s.aggregate.as_ref().unwrap();
        // Every gateway ticks at ~100 pps; the trunk tap sees the union.
        let per_flow = s.sender_tap.count() as f64;
        let trunk = agg.trunk_tap.as_ref().unwrap().count() as f64;
        assert!(
            (trunk / per_flow - flows as f64).abs() < 0.1 * flows as f64,
            "trunk {trunk} vs per-flow {per_flow}"
        );
        // Post-demux, flow 0's tap is a clean single-flow stream again.
        assert!(s.receiver_tap.count() > 400);
        let (_, _, cross) = s.receiver_tap.kind_counts();
        assert_eq!(cross, 0);
        // Every receiver terminates only its own flow.
        for (i, r) in agg.receivers.iter().enumerate() {
            assert_eq!(r.unexpected(), 0, "receiver {i} saw foreign traffic");
            assert!(
                r.payload_delivered() + r.dummies_stripped() > 400,
                "receiver {i} starved"
            );
        }
    }

    #[test]
    fn aggregate_receiver_gets_all_payload_per_flow() {
        let b = ScenarioBuilder::aggregate(3, 4).with_payload_rate(40.0);
        let mut s = b.build().unwrap();
        s.run_for_secs(10.0);
        let agg = s.aggregate.as_ref().unwrap();
        for (gw, rx) in agg.gateways.iter().zip(&agg.receivers) {
            // Everything sent is delivered, minus at most a couple in
            // flight over the 5 ms trunk.
            assert!(gw.payload_sent() >= 395, "sent {}", gw.payload_sent());
            assert!(gw.payload_sent() - rx.payload_delivered() <= 2);
            assert!(gw.dummy_sent() - rx.dummies_stripped() <= 2);
        }
        assert_eq!(
            s.payload_sink.count() as u64,
            agg.receivers[0].payload_delivered()
        );
    }

    #[test]
    fn empty_aggregate_is_a_build_error() {
        let b = ScenarioBuilder::aggregate(4, 0);
        assert!(matches!(b.build(), Err(ScenarioError::EmptyAggregate)));
    }

    #[test]
    fn trunk_demux_forwards_known_flows() {
        use linkpad_sim::time::SimTime;
        let mut b = SimBuilder::new(MasterSeed::new(5));
        let (h, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let demux_id = b.add_node(Box::new(TrunkDemux::new(vec![sink_id])));
        b.add_node(Box::new(DistSource::new(
            demux_id,
            FlowId(0),
            PacketKind::Dummy,
            Box::new(linkpad_stats::dist::Deterministic::new(0.010).unwrap()),
            Box::new(linkpad_stats::dist::Deterministic::new(500.0).unwrap()),
        )));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(h.count(), 100);
    }

    #[test]
    #[should_panic(expected = "no branch for flow 7")]
    fn trunk_demux_errors_on_unknown_flow() {
        use linkpad_sim::time::SimTime;
        let mut b = SimBuilder::new(MasterSeed::new(5));
        let (_h, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let demux_id = b.add_node(Box::new(TrunkDemux::new(vec![sink_id])));
        // Flow 7 has no branch: a wiring bug, and it must fail loudly
        // rather than silently dropping the flow's packets.
        b.add_node(Box::new(DistSource::new(
            demux_id,
            FlowId(7),
            PacketKind::Dummy,
            Box::new(linkpad_stats::dist::Deterministic::new(0.004).unwrap()),
            Box::new(linkpad_stats::dist::Deterministic::new(500.0).unwrap()),
        )));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn observer_replaces_trunk_tap_and_sees_the_same_aggregate() {
        let flows = 6;
        let tapped = ScenarioBuilder::aggregate(9, flows).with_payload_rate(10.0);
        let observed = tapped.clone().with_trunk_observer(0.1);
        let mut a = tapped.build().unwrap();
        let mut b = observed.build().unwrap();
        a.run_for_secs(4.0);
        b.run_for_secs(4.0);
        let tap = a.aggregate.as_ref().unwrap().trunk_tap.clone().unwrap();
        let agg_b = b.aggregate.as_ref().unwrap();
        assert!(agg_b.trunk_tap.is_none(), "observer replaces the tap");
        let obs = agg_b.trunk_observer.clone().unwrap();
        // Identical seed and topology shape → identical trunk arrivals,
        // just folded into windows instead of stored one by one.
        assert_eq!(obs.arrivals(), tap.count() as u64);
        assert_eq!(
            obs.counts().iter().sum::<f64>(),
            tap.count() as f64,
            "window counts partition the arrivals"
        );
        assert!(
            obs.windows() <= 41,
            "windows {} not O(arrivals)",
            obs.windows()
        );
        // Full windows hold ~flows × window/τ arrivals.
        let mid = obs.counts()[20];
        assert!((mid - (flows * 10) as f64).abs() <= 2.0, "mid window {mid}");
    }

    #[test]
    fn switching_target_records_ground_truth_and_keeps_qos() {
        let b = ScenarioBuilder::aggregate(12, 3)
            .with_trunk_observer(0.05)
            .with_switching_target([10.0, 40.0], 1.0);
        let mut s = b.build().unwrap();
        s.run_for_secs(3.5);
        let agg = s.aggregate.as_ref().unwrap();
        let log = agg.target_rate_log.clone().unwrap();
        let entries = log.entries();
        assert_eq!(entries.len(), 4, "start + 3 switches: {entries:?}");
        assert_eq!(entries[0].1, 10.0);
        assert_eq!(entries[1].1, 40.0);
        // The switching payload still rides the padded flow end to end.
        assert!(s.receiver.payload_delivered() > 50);
        assert_eq!(s.receiver.unexpected(), 0);
        for (i, r) in agg.receivers.iter().enumerate() {
            assert!(
                r.payload_delivered() + r.dummies_stripped() > 300,
                "receiver {i} starved"
            );
        }
    }

    #[test]
    fn fault_gate_drops_trunk_traffic_at_the_configured_rate() {
        use linkpad_sim::fault::LossModel;
        let plan = FaultPlan::new(7).with_trunk_loss(LossModel::Bernoulli { p: 0.2 });
        let b = ScenarioBuilder::aggregate(20, 4)
            .with_payload_rate(10.0)
            .with_faults(plan);
        let mut s = b.build().unwrap();
        s.run_for_secs(10.0);
        let agg = s.aggregate.as_ref().unwrap();
        let gate = agg.fault_gate.clone().unwrap();
        assert!(gate.offered() > 3500, "offered {}", gate.offered());
        let frac = gate.drop_fraction();
        assert!((frac - 0.2).abs() < 0.03, "drop fraction {frac}");
        // The trunk instrument sits behind the gate: it sees survivors
        // only (minus the few packets in flight over the 5 ms trunk).
        let trunk = agg.trunk_tap.as_ref().unwrap().count() as u64;
        assert!(
            gate.passed() - trunk <= 8,
            "tap {trunk} vs passed {}",
            gate.passed()
        );
    }

    #[test]
    fn observer_gap_plan_stamps_coverage_without_a_gate() {
        use linkpad_sim::fault::OutageSchedule;
        let gaps = OutageSchedule::new(
            SimDuration::from_secs_f64(1.0),
            SimDuration::from_secs_f64(0.25),
        );
        let b = ScenarioBuilder::aggregate(21, 4)
            .with_payload_rate(10.0)
            .with_trunk_observer(0.25)
            .with_faults(FaultPlan::new(3).with_observer_gaps(gaps));
        let mut s = b.build().unwrap();
        s.run_for_secs(4.0);
        let agg = s.aggregate.as_ref().unwrap();
        assert!(agg.fault_gate.is_none(), "gap-only plan wires no gate");
        let obs = agg.trunk_observer.clone().unwrap();
        let covs = obs.coverages();
        // 0.25 s windows, down the first 0.25 s of every 1 s: every
        // fourth window is fully blind, the rest fully covered.
        assert!(covs.len() >= 12, "windows {}", covs.len());
        for (i, &c) in covs.iter().enumerate() {
            let want = if i % 4 == 0 { 0.0 } else { 1.0 };
            assert_eq!(c, want, "window {i}");
        }
        // Blind windows record nothing.
        let counts = obs.counts();
        assert_eq!(counts[4], 0.0);
        assert!(counts[5] > 0.0);
    }

    #[test]
    fn invalid_fault_plan_is_a_typed_build_error() {
        use linkpad_sim::fault::LossModel;
        let bad = ScenarioBuilder::aggregate(1, 2)
            .with_faults(FaultPlan::new(0).with_trunk_loss(LossModel::Bernoulli { p: 2.0 }));
        assert!(matches!(
            bad.build(),
            Err(ScenarioError::InvalidFaultPlan(_))
        ));
    }

    #[test]
    fn invalid_switching_and_observer_specs_error_cleanly() {
        let bad_rate = ScenarioBuilder::aggregate(1, 2).with_switching_target([0.0, 40.0], 1.0);
        assert!(matches!(bad_rate.build(), Err(ScenarioError::Stats(_))));
        let bad_dwell = ScenarioBuilder::aggregate(1, 2).with_switching_target([10.0, 40.0], -1.0);
        assert!(matches!(bad_dwell.build(), Err(ScenarioError::Stats(_))));
        let bad_window = ScenarioBuilder::aggregate(1, 2).with_trunk_observer(0.0);
        assert!(matches!(bad_window.build(), Err(ScenarioError::Stats(_))));
    }
}
