//! # linkpad-workloads
//!
//! Traffic workloads and ready-made experiment scenarios for the linkpad
//! reproduction of Fu et al. (ICPP 2003):
//!
//! * [`spec`] — cloneable specifications for payload traffic, padding
//!   schedules and per-hop cross traffic, so sweeps can describe hundreds
//!   of configurations cheaply and materialize them per run.
//! * [`cross`] — cross-traffic models: packet-size mixes, the
//!   utilization→rate helper, and diurnal (hour-of-day) utilization
//!   profiles for the campus and WAN experiments of Fig. 8.
//! * [`demux`] — a flow demultiplexer so cross traffic leaves the padded
//!   path at each hop's egress, as in the paper's Fig. 3 topology.
//! * [`switching`] — a payload source that switches between the low and
//!   high rate over time (the hidden state the adversary estimates).
//! * [`scenario`] — the experiment topologies as builders:
//!   **lab** (GW1 → ESR-5000-style router with cross traffic → GW2,
//!   Fig. 3), **campus** (3-hop chain, Fig. 7a), **wan** (15-hop
//!   chain, Ohio→Texas, Fig. 7b) and **aggregate** (N gateway pairs on
//!   one trunk), each returning a runnable simulation plus tap/gateway
//!   handles, a PIAT collector, and a seed-reset fast path for sweeps.
//! * [`aggregate`] — the many-gateway trunk topology: per-flow padded
//!   gateway pairs feeding a shared trunk link, a trunk tap recording
//!   the aggregate, and an N-way flow demux behind it. Cohort mode
//!   ([`ScenarioBuilder::with_cohorts`](scenario::ScenarioBuilder::with_cohorts))
//!   swaps the non-target pairs for `FlowCohort` superposition nodes;
//!   [`PhaseSpec`](aggregate::PhaseSpec) lays out the padding-clock
//!   start phases (the desynchronized-clock knob).
//! * [`shard`] — sharded aggregate execution: split one trunk
//!   scenario's flow population over worker sub-sims and merge the
//!   per-shard window series into one trunk view (counts/bytes
//!   superpose exactly) — with cohorts, the 10⁶-flow path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod background;
pub mod cross;
pub mod demux;
pub mod scenario;
pub mod shard;
pub mod spec;
pub mod switching;

pub use aggregate::{AggregateSpec, PhaseSpec, SwitchingSpec, TrunkDemux};
pub use background::BackgroundNoiseHop;
pub use cross::{cross_rate_for_utilization, DiurnalProfile, SizeMix};
pub use demux::FlowDemux;
pub use scenario::{AggregateHandles, BuiltScenario, ScenarioBuilder, TapPosition};
pub use shard::{ShardReport, ShardedAggregate, ShardedRun};
pub use spec::{HopSpec, PayloadSpec, ScheduleSpec};
pub use switching::{RateLog, SwitchingSource};
