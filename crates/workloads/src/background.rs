//! Fluid background-load hops: M/M/1-style queueing noise without
//! per-packet cross-traffic simulation.
//!
//! The WAN experiment (Fig. 8b) spans 15 routers whose cross traffic at
//! realistic backbone rates would cost billions of simulator events per
//! detection point. For padded packets spaced τ = 10 ms apart, however,
//! the router queue relaxes in tens of microseconds — thousands of times
//! faster than the probing rate — so consecutive padded packets see
//! *independent* stationary queue states. That makes the exact hybrid
//! substitution valid: delay each padded packet by an independent draw
//! from the hop's stationary waiting-time distribution instead of
//! simulating every cross packet.
//!
//! We use the M/M/1 waiting law, which has a closed form:
//! `W = 0` with probability `1 − ρ`, else `Exp(E[S]/(1 − ρ))`. The lab
//! bench (`fig6`) keeps full packet-level cross traffic and doubles as
//! the validation that this substitution reproduces the same
//! detection-rate behaviour (`ablations` bench, background-vs-packet).

use linkpad_sim::engine::Context;
use linkpad_sim::node::{Node, NodeId};
use linkpad_sim::packet::Packet;
use linkpad_sim::time::{SimDuration, SimTime};
use linkpad_stats::StatsError;

/// A hop that injects stationary M/M/1 queueing delay.
#[derive(Debug)]
pub struct BackgroundNoiseHop {
    next: NodeId,
    utilization: f64,
    /// Mean of the conditional (busy) waiting time: `E[S]/(1 − ρ)`.
    busy_wait_mean: f64,
    /// Fixed propagation to the next hop.
    propagation: SimDuration,
    /// FIFO guard: a queue cannot reorder, so neither may its model.
    last_departure: SimTime,
    label: String,
}

impl BackgroundNoiseHop {
    /// A background hop on a link of `link_bps` loaded to `utilization`
    /// by cross traffic with mean packet size `mean_size_bytes`.
    pub fn new(
        next: NodeId,
        link_bps: f64,
        utilization: f64,
        mean_size_bytes: f64,
        propagation: SimDuration,
    ) -> Result<Self, StatsError> {
        if !(0.0..1.0).contains(&utilization) {
            return Err(StatsError::InvalidProbability {
                what: "background hop utilization",
                value: utilization,
            });
        }
        if link_bps.is_nan()
            || link_bps <= 0.0
            || mean_size_bytes.is_nan()
            || mean_size_bytes <= 0.0
        {
            return Err(StatsError::NonPositive {
                what: "background hop link/mean size",
                value: link_bps.min(mean_size_bytes),
            });
        }
        let mean_service = 8.0 * mean_size_bytes / link_bps;
        Ok(Self {
            next,
            utilization,
            busy_wait_mean: mean_service / (1.0 - utilization),
            propagation,
            last_departure: SimTime::ZERO,
            label: "bg-hop".to_string(),
        })
    }

    /// Builder-style label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Closed-form variance of the injected wait (per packet):
    /// `Var(W) = 2ρ·m² − (ρ·m)²` with `m = E[S]/(1−ρ)`.
    pub fn wait_variance(&self) -> f64 {
        let m = self.busy_wait_mean;
        let rho = self.utilization;
        2.0 * rho * m * m - (rho * m) * (rho * m)
    }
}

impl Node for BackgroundNoiseHop {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        let wait = if ctx.rng.next_f64() < self.utilization {
            let u = ctx.rng.next_f64();
            -self.busy_wait_mean * (1.0 - u).ln()
        } else {
            0.0
        };
        let mut departure = ctx.now() + SimDuration::from_secs_f64(wait);
        // FIFO: never overtake the previous packet.
        if departure < self.last_departure {
            departure = self.last_departure;
        }
        self.last_departure = departure;
        let delay = departure.saturating_since(ctx.now()) + self.propagation;
        ctx.send_after(delay, self.next, packet);
    }

    fn reset(&mut self) {
        self.last_departure = SimTime::ZERO;
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_sim::engine::SimBuilder;
    use linkpad_sim::packet::{FlowId, PacketKind};
    use linkpad_sim::sink::Sink;
    use linkpad_sim::source::DistSource;
    use linkpad_stats::dist::Deterministic;
    use linkpad_stats::moments::sample_variance;
    use linkpad_stats::rng::MasterSeed;

    fn run_piat_variance(utilization: f64, seed: u64) -> f64 {
        let mut b = SimBuilder::new(MasterSeed::new(seed));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let hop =
            BackgroundNoiseHop::new(sink_id, 400e6, utilization, 593.0, SimDuration::ZERO).unwrap();
        let hop_id = b.add_node(Box::new(hop));
        b.add_node(Box::new(DistSource::new(
            hop_id,
            FlowId::PADDED,
            PacketKind::Dummy,
            Box::new(Deterministic::new(0.010).unwrap()),
            Box::new(Deterministic::new(500.0).unwrap()),
        )));
        let mut sim = b.build().unwrap();
        sim.run_until(linkpad_sim::time::SimTime::from_secs_f64(200.0));
        let times = handle.arrival_times();
        let piats: Vec<f64> = times
            .windows(2)
            .map(|w| w[1].saturating_since(w[0]).as_secs_f64())
            .collect();
        sample_variance(&piats).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(
            BackgroundNoiseHop::new(NodeId_test(), 400e6, 1.0, 593.0, SimDuration::ZERO).is_err()
        );
        assert!(
            BackgroundNoiseHop::new(NodeId_test(), 400e6, -0.1, 593.0, SimDuration::ZERO).is_err()
        );
        assert!(
            BackgroundNoiseHop::new(NodeId_test(), 0.0, 0.5, 593.0, SimDuration::ZERO).is_err()
        );
        assert!(
            BackgroundNoiseHop::new(NodeId_test(), 400e6, 0.0, 593.0, SimDuration::ZERO).is_ok()
        );
    }

    // Test helper: any node id works for construction-only tests.
    #[allow(non_snake_case)]
    fn NodeId_test() -> NodeId {
        // Build a throwaway sim to mint a valid id.
        let mut b = SimBuilder::new(MasterSeed::new(0));
        let (_h, sink) = Sink::new();
        b.add_node(Box::new(sink))
    }

    #[test]
    fn zero_utilization_is_transparent() {
        let v = run_piat_variance(0.0, 1);
        assert!(v < 1e-18, "no noise expected, got {v:e}");
    }

    #[test]
    fn piat_variance_matches_closed_form() {
        // PIAT variance = 2·Var(W) for iid waits.
        let hop =
            BackgroundNoiseHop::new(NodeId_test(), 400e6, 0.4, 593.0, SimDuration::ZERO).unwrap();
        let want = 2.0 * hop.wait_variance();
        let got = run_piat_variance(0.4, 2);
        assert!(
            ((got - want) / want).abs() < 0.15,
            "got {got:e}, want {want:e}"
        );
    }

    #[test]
    fn variance_grows_with_utilization() {
        let v1 = run_piat_variance(0.1, 3);
        let v2 = run_piat_variance(0.3, 4);
        let v3 = run_piat_variance(0.5, 5);
        assert!(v2 > v1);
        assert!(v3 > v2);
    }

    #[test]
    fn fifo_is_preserved() {
        // Saturating hop with big waits: packets must still arrive in
        // send order (checked via sink arrival times being sorted —
        // timestamps are recorded in arrival order by construction, so
        // instead verify count: every packet arrives exactly once).
        let mut b = SimBuilder::new(MasterSeed::new(6));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let hop = BackgroundNoiseHop::new(sink_id, 1e6, 0.9, 1500.0, SimDuration::ZERO).unwrap();
        let hop_id = b.add_node(Box::new(hop.with_label("hot")));
        b.add_node(Box::new(DistSource::new(
            hop_id,
            FlowId::PADDED,
            PacketKind::Dummy,
            Box::new(Deterministic::new(0.001).unwrap()),
            Box::new(Deterministic::new(500.0).unwrap()),
        )));
        let mut sim = b.build().unwrap();
        sim.run_until(linkpad_sim::time::SimTime::from_secs_f64(10.0));
        let times = handle.arrival_times();
        assert!(times.len() > 5000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
