//! Sharded aggregate execution: one trunk scenario, many worker sub-sims.
//!
//! The second wall between the aggregate family and 10⁶ flows (after
//! per-flow node state, which [`linkpad_sim::cohort`] removes) is the
//! **one event-loop thread per scenario**: a single `Sim` serializes
//! every gateway tick and trunk arrival through one queue. The flows of
//! an aggregate are statistically independent — each draws from its own
//! RNG streams and, under CIT, its wire output is a phase-offset comb —
//! so the population can be **partitioned**: [`ShardedAggregate`] splits
//! the global flow range over `shards` sub-simulations, runs each on a
//! worker (dynamic work-stealing via
//! [`parallel_map_init_catching`](linkpad_sim::parallel::parallel_map_init_catching),
//! with per-worker topology reuse through [`BuiltScenario::reset`] when
//! consecutive shards share a shape), and merges the per-shard trunk
//! window series into one trunk view with
//! [`merge_window_series`](linkpad_sim::observer::merge_window_series).
//!
//! **Harness fault tolerance.** A panicking shard worker no longer
//! tears the whole fan-out down: the panic is caught in the worker
//! (sibling shards keep running), and the failed shard is retried
//! exactly once, sequentially, with a fresh rebuild. Because every
//! shard is a closed deterministic sub-simulation, the retried result
//! is bit-identical to what the first attempt would have produced —
//! a run that needed a retry merges the same window series as one that
//! didn't. A shard that fails twice surfaces as the typed
//! [`ScenarioError::ShardFailed`] carrying the shard index and panic
//! message. Orthogonally, [`ShardedAggregate::with_watchdog`] bounds
//! each shard's event count and wall-clock budget: a tripped shard
//! ends early with its fully-simulated windows intact (the partial
//! last window is discarded) and the merged series is truncated to
//! the prefix every shard completed, so a timeout yields a shorter but
//! valid result instead of none.
//!
//! **What the merge means.** Per-window arrival counts and byte totals
//! **superpose exactly**: the merged series is bit-identical to what a
//! single sim of the whole population records (arrival timestamps are
//! µs-jittered per flow but sit ms-deep inside 10⁻¹–10⁰ s windows, so
//! no arrival can change windows across the split; guarded by this
//! module's tests). These count/byte series are what the aggregate
//! adversary's flow-count estimators consume. The per-window PIAT
//! moments **pool** across shards (the exact
//! `RunningMoments::merge` reduction of each shard's inter-arrival
//! population); they are *not* the inter-arrival process of the
//! interleaved union, which is not reconstructible from per-shard
//! statistics in `O(windows)` — see DESIGN.md. A one-shard run is the
//! degenerate case and is bit-identical to the plain single sim,
//! moments included.
//!
//! Shard 0 carries the instrumented target flow (and runs under the
//! builder's own seed, so `shards = 1` reproduces the unsharded run
//! exactly); shards 1.. are observer-only populations under seeds
//! derived from the builder seed and the shard index.

use crate::aggregate::{AggregateSpec, PhaseSpec};
use crate::scenario::{BuiltScenario, ScenarioBuilder, ScenarioError};
use linkpad_obs::metrics::{MetricValue, Registry};
use linkpad_obs::{
    EventLog, HarnessEvent, Histogram, ProfileReport, RunManifest, ShardManifest, Snapshot,
    TraceReport, Truncation,
};
use linkpad_sim::observer::{merge_window_series, WindowStats};
use linkpad_sim::parallel::{default_threads, parallel_map_init_catching};
use linkpad_sim::time::SimDuration;
use linkpad_stats::rng::splitmix64_mix;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Render a caught panic payload (the retry path's own `catch_unwind`;
/// first attempts go through `ItemPanic`, which does the same).
fn panic_cause(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The metric snapshot of one trunk view: the **exactly superposable**
/// counters (arrivals, per-window counts and bytes summed) plus peak
/// gauges. Shard snapshots built by this function merge —
/// counter-for-counter, bit-for-bit — to the snapshot of the
/// equivalent unsharded run, which is the telemetry analogue of the
/// window-series merge contract (asserted by
/// `tests/metrics_determinism.rs`).
///
/// Deliberately excluded from the counter set: PIAT sample totals
/// (each shard's first arrival has no predecessor, so N shards carry
/// exactly N−1 fewer inter-arrival samples than the unsharded run —
/// pooled, not superposable; see the module docs) and per-window
/// *distributions* (added post-merge by
/// [`ShardedRun::merged_metrics`]). Every counter in a snapshot must
/// superpose exactly; quantities that only pool ride in gauges or in
/// the report structs instead.
pub fn window_metrics(windows: &[WindowStats], arrivals: u64, pending_peak: usize) -> Snapshot {
    let mut reg = Registry::new();
    let arr = reg.counter("trunk.arrivals");
    let count = reg.counter("trunk.window_count");
    let bytes = reg.counter("trunk.window_bytes");
    let wins = reg.gauge("trunk.windows");
    let pend = reg.gauge("pending.peak");
    reg.add(arr, arrivals);
    for w in windows {
        reg.add(count, w.count);
        reg.add(bytes, w.bytes);
    }
    reg.gauge_max(wins, windows.len() as u64);
    reg.gauge_max(pend, pending_peak as u64);
    reg.snapshot()
}

/// Shape fingerprint of a shard's topology: shards with equal shapes are
/// identical up to their RNG seed, so a worker that just ran one can
/// [`BuiltScenario::reset`] it for the next instead of rebuilding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShardShape {
    flows: usize,
    has_target: bool,
    /// Phase layouts that depend on *global* flow position — uniform
    /// draws per flow id, and stratified spreads (keyed to the global
    /// flow/member index so the merged arrival multiset is independent
    /// of the split) — key the shape to the range start, forfeiting
    /// reuse; only the synchronized layout (every phase zero) shares
    /// one key and therefore one topology across shards.
    phase_key: u64,
    /// Cohort mode groups members on the **global** cohort grid, so a
    /// range's partition into (partial) cohorts depends on where its
    /// start sits within a cohort: equal-sized ranges at different
    /// alignments build different node partitions (e.g. cohort sizes
    /// [1, 2] vs [2, 1]), which draw jitter in different per-node
    /// sequences. The alignment therefore keys the shape — without it,
    /// reset-reuse would replay another partition's draw order and the
    /// merged PIAT moments would depend on which worker ran which
    /// shard.
    cohort_align: u64,
}

/// Result of one shard's sub-simulation.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index (0 carries the target flow).
    pub shard: usize,
    /// Global flow range `[start, start+count)` this shard simulated.
    pub flow_range: (usize, usize),
    /// The shard's trunk window series.
    pub windows: Vec<WindowStats>,
    /// Trunk arrivals the shard's observer folded.
    pub arrivals: u64,
    /// Events the shard's event loop dispatched.
    pub events: u64,
    /// Largest pending-event population sampled during the run (at the
    /// run-slice granularity — a lower bound on the true peak).
    pub pending_peak: usize,
    /// Did the shard's watchdog budget end the run early? When set,
    /// `windows` holds only the fully-simulated prefix (the partial
    /// window in progress at the trip is discarded).
    pub interrupted: bool,
    /// Sim time (nanoseconds) the shard had reached when its watchdog
    /// tripped — the truncation point a partial result was cut at.
    /// `None` for a complete run.
    pub truncated_at_nanos: Option<u64>,
    /// The shard's metric snapshot ([`window_metrics`] over its trunk
    /// view): merges across shards to the unsharded run's counters
    /// bit-for-bit.
    pub metrics: Snapshot,
    /// Engine self-profile, when the run enabled
    /// [`ShardedAggregate::with_profiling`].
    pub profile: Option<ProfileReport>,
    /// Causal trace of the shard's event loop, when the run enabled
    /// [`ShardedAggregate::with_tracing`]. Per-shard and deterministic,
    /// like the profile; deliberately kept out of run manifests (a
    /// trace is an artifact of its own, exported via the Perfetto /
    /// collapsed-stack renderers).
    pub trace: Option<TraceReport>,
}

/// Merged outcome of a sharded aggregate run.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// The merged trunk window series (counts/bytes superposed exactly,
    /// PIAT moments pooled — see the module docs).
    pub windows: Vec<WindowStats>,
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardReport>,
    /// Wall-clock seconds for the whole fan-out, including merge.
    pub wall_secs: f64,
}

impl ShardedRun {
    /// Per-window arrival counts of the merged trunk view, as `f64` for
    /// the estimators (same shape as `ObserverHandle::counts`).
    pub fn counts(&self) -> Vec<f64> {
        self.windows.iter().map(|w| w.count as f64).collect()
    }

    /// Total trunk arrivals across all shards.
    pub fn arrivals(&self) -> u64 {
        self.shards.iter().map(|s| s.arrivals).sum()
    }

    /// Total events dispatched across all shard event loops.
    pub fn events(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// Largest sampled pending-event population of any shard — the
    /// per-worker memory high-water proxy.
    pub fn pending_peak(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.pending_peak)
            .max()
            .unwrap_or(0)
    }

    /// Aggregate simulation throughput: events across all shards per
    /// wall-clock second of the fan-out.
    pub fn events_per_sec(&self) -> f64 {
        self.events() as f64 / self.wall_secs
    }

    /// Did any shard's watchdog end its run early? The merged series is
    /// then truncated to the prefix every shard fully simulated.
    pub fn interrupted(&self) -> bool {
        self.shards.iter().any(|s| s.interrupted)
    }

    /// Merge the per-shard metric snapshots (counters superpose, gauges
    /// keep peaks) and add the post-merge per-window arrival-count
    /// distribution. The counter subset equals the unsharded run's
    /// bit-for-bit; the histogram is computed from the *merged* window
    /// series because per-shard distributions do not superpose.
    pub fn merged_metrics(&self) -> Snapshot {
        let mut merged = Snapshot::empty();
        for s in &self.shards {
            merged.merge(&s.metrics);
        }
        let mut hist = Histogram::new();
        for w in &self.windows {
            hist.record(w.count);
        }
        merged.insert(
            "trunk.window_count_hist",
            MetricValue::Histogram(Box::new(hist)),
        );
        merged
    }
}

/// An aggregate scenario split over worker sub-simulations (see the
/// module docs). Construct from an aggregate [`ScenarioBuilder`] with a
/// trunk observer configured and a shard count set via
/// [`ScenarioBuilder::with_shards`].
#[derive(Debug, Clone)]
pub struct ShardedAggregate {
    builder: ScenarioBuilder,
    ranges: Vec<(usize, usize)>,
    /// Per-shard run budget: (max events, max wall clock).
    watchdog: Option<(Option<u64>, Option<Duration>)>,
    /// Test hook: attempts at this shard panic while the shared budget
    /// is positive (each firing decrements it).
    panic_budget: Option<(usize, Arc<AtomicUsize>)>,
    /// Enable per-shard engine self-profiling
    /// ([`linkpad_sim::engine::Sim::enable_profiling`]).
    profiling: bool,
    /// Enable per-shard causal tracing
    /// ([`linkpad_sim::engine::Sim::enable_tracing`]).
    tracing: bool,
}

impl ShardedAggregate {
    /// Validate and plan the split. Fails unless the builder is an
    /// aggregate with a windowed trunk observer (the mergeable view),
    /// no pre-set flow range, and `1 ≤ shards ≤ flows`.
    pub fn new(builder: ScenarioBuilder) -> Result<Self, ScenarioError> {
        let Some(spec) = builder.aggregate_spec() else {
            return Err(ScenarioError::InvalidSharding(
                "only the aggregate family shards",
            ));
        };
        if spec.observer_window.is_none() {
            return Err(ScenarioError::InvalidSharding(
                "sharded runs merge window series; configure with_trunk_observer",
            ));
        }
        if spec.flow_range.is_some() {
            return Err(ScenarioError::InvalidSharding(
                "builder is already restricted to a flow range",
            ));
        }
        let shards = builder.shards();
        if shards == 0 || shards > spec.flows {
            return Err(ScenarioError::InvalidSharding(
                "shard count must be between 1 and the flow count",
            ));
        }
        // Even split; the first `flows % shards` shards absorb the
        // remainder, so shard sizes differ by at most one and most
        // shards share one shape (→ reset-reuse on a worker).
        let base = spec.flows / shards;
        let rem = spec.flows % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        for s in 0..shards {
            let count = base + usize::from(s < rem);
            ranges.push((start, count));
            start += count;
        }
        Ok(Self {
            builder,
            ranges,
            watchdog: None,
            panic_budget: None,
            profiling: false,
            tracing: false,
        })
    }

    /// Enable engine self-profiling in every shard sim: each
    /// [`ShardReport`] (and manifest) then carries a
    /// [`ProfileReport`] — batch-size distribution, pending-depth
    /// series, event-store op counters. Profiles are deterministic per
    /// shard; the run pays the engine's outlined profiled loop.
    pub fn with_profiling(mut self) -> Self {
        self.profiling = true;
        self
    }

    /// Enable causal tracing in every shard sim: each [`ShardReport`]
    /// then carries a [`TraceReport`] — per-event records with exact
    /// scheduler provenance, renderable as a Perfetto timeline or
    /// collapsed causal stacks. Traces are deterministic per shard
    /// (S=1 tracing reproduces the unsharded sim's trace bit-for-bit);
    /// the run pays the engine's outlined traced loop.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Bound every shard's run: end its event loop early once it has
    /// dispatched `max_events` events or run for `max_wall` of wall
    /// clock (see [`linkpad_sim::engine::Sim::set_watchdog`]). A
    /// tripped shard reports `interrupted` and keeps only its
    /// fully-simulated windows; the merged series truncates to the
    /// prefix every shard completed.
    pub fn with_watchdog(mut self, max_events: Option<u64>, max_wall: Option<Duration>) -> Self {
        self.watchdog = Some((max_events, max_wall));
        self
    }

    /// Test hook: make the **first** attempt at shard `shard` panic
    /// inside its worker. Used by the fault-tolerance tests and the
    /// `fig_fault_robustness` harness gate to prove that a crashed
    /// worker is retried and the merged result is bit-identical to an
    /// undisturbed run.
    pub fn inject_panic_once(&mut self, shard: usize) {
        self.inject_panics(shard, 1);
    }

    /// Test hook: make the first `times` attempts at shard `shard`
    /// panic. `times >= 2` also defeats the single retry, exercising
    /// the [`ScenarioError::ShardFailed`] surface.
    pub fn inject_panics(&mut self, shard: usize, times: usize) {
        self.panic_budget = Some((shard, Arc::new(AtomicUsize::new(times))));
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// The global flow range of shard `s`.
    pub fn flow_range(&self, s: usize) -> (usize, usize) {
        self.ranges[s]
    }

    /// The master seed shard `s` runs under. Shard 0 uses the builder's
    /// own seed — a one-shard run reproduces the unsharded scenario
    /// bit-for-bit — and later shards derive independent seeds from
    /// `(builder seed, shard index)`.
    pub fn shard_seed(&self, s: usize) -> u64 {
        if s == 0 {
            self.builder.seed()
        } else {
            splitmix64_mix(
                self.builder
                    .seed()
                    .wrapping_add((s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )
        }
    }

    /// The builder materializing shard `s`'s sub-simulation.
    pub fn shard_builder(&self, s: usize) -> ScenarioBuilder {
        let (start, count) = self.ranges[s];
        self.builder
            .clone()
            .with_flow_range(start, count)
            .with_seed(self.shard_seed(s))
    }

    /// The aggregate spec, re-checked on the run path: `new` validated
    /// it, but the run paths propagate a typed error instead of
    /// panicking if the invariant is ever violated.
    fn spec(&self) -> Result<AggregateSpec, ScenarioError> {
        self.builder
            .aggregate_spec()
            .ok_or(ScenarioError::InvalidSharding(
                "only the aggregate family shards",
            ))
    }

    fn shard_shape(&self, s: usize) -> Result<ShardShape, ScenarioError> {
        let (start, count) = self.ranges[s];
        let spec = self.spec()?;
        let position_dependent = !matches!(spec.phases, PhaseSpec::Synchronized);
        Ok(ShardShape {
            flows: count,
            has_target: start == 0,
            phase_key: if position_dependent {
                start as u64 + 1
            } else {
                0
            },
            cohort_align: match spec.cohort_size {
                // Offset of the range's first member within its global
                // cohort: determines the partial/full cohort partition.
                Some(k) => ((start.max(1) - 1) % k) as u64 + 1,
                None => 0,
            },
        })
    }

    /// Run every shard for `secs` of simulated time on the default
    /// worker pool and merge the trunk views.
    pub fn run_for_secs(&self, secs: f64) -> Result<ShardedRun, ScenarioError> {
        self.run_for_secs_with_threads(secs, default_threads())
    }

    /// [`ShardedAggregate::run_for_secs`] with an explicit worker count.
    /// Results are independent of `threads` (each shard is a closed,
    /// deterministic sub-simulation; the merge runs in shard order).
    ///
    /// A shard whose worker panics is retried once, sequentially, with
    /// a fresh rebuild — bit-identical to the result the first attempt
    /// would have produced (see the module docs). A shard that panics
    /// twice fails the run with [`ScenarioError::ShardFailed`].
    pub fn run_for_secs_with_threads(
        &self,
        secs: f64,
        threads: usize,
    ) -> Result<ShardedRun, ScenarioError> {
        self.run_observed(secs, threads, None)
    }

    /// [`ShardedAggregate::run_for_secs_with_threads`] that also emits
    /// structured lifecycle events — run start/finish, per-shard
    /// completion, panic/retry, watchdog truncation, fault-plan
    /// activation, observer gap windows — into `log`. Events are
    /// emitted by the coordinator after the fan-out, so the simulated
    /// results are byte-identical to an unlogged run.
    pub fn run_for_secs_logged(
        &self,
        secs: f64,
        threads: usize,
        log: &mut EventLog,
    ) -> Result<ShardedRun, ScenarioError> {
        self.run_observed(secs, threads, Some(log))
    }

    fn run_observed(
        &self,
        secs: f64,
        threads: usize,
        mut log: Option<&mut EventLog>,
    ) -> Result<ShardedRun, ScenarioError> {
        let start = Instant::now();
        if let Some(l) = log.as_deref_mut() {
            l.emit(HarnessEvent::RunStart {
                seed: self.builder.seed(),
                shards: self.shards(),
                flows: self.builder.aggregate_spec().map_or(0, |s| s.flows),
            });
            if let Some(plan) = self.builder.aggregate_spec().and_then(|s| s.faults) {
                l.emit(HarnessEvent::FaultPlanActive {
                    summary: format!("{plan:?}"),
                });
            }
        }
        let shard_ids: Vec<usize> = (0..self.shards()).collect();
        let attempts = parallel_map_init_catching(
            shard_ids,
            threads,
            || None::<(ShardShape, BuiltScenario)>,
            |slot, s| self.run_shard(slot, s, secs),
        );
        let mut shards = Vec::with_capacity(attempts.len());
        for (s, attempt) in attempts.into_iter().enumerate() {
            let report = match attempt {
                Ok(report) => report?,
                // Worker panic: one fresh-rebuild retry. The shard is a
                // closed deterministic sub-sim, so a clean retry
                // reproduces the lost result exactly.
                Err(panic) => {
                    if let Some(l) = log.as_deref_mut() {
                        l.emit(HarnessEvent::ShardPanicked {
                            shard: s,
                            cause: panic.message,
                        });
                    }
                    match catch_unwind(AssertUnwindSafe(|| self.run_shard(&mut None, s, secs))) {
                        Ok(report) => {
                            if let Some(l) = log.as_deref_mut() {
                                l.emit(HarnessEvent::ShardRetried { shard: s });
                            }
                            report?
                        }
                        Err(payload) => {
                            return Err(ScenarioError::ShardFailed {
                                shard: s,
                                cause: panic_cause(payload),
                            });
                        }
                    }
                }
            };
            if let Some(l) = log.as_deref_mut() {
                l.emit(HarnessEvent::ShardFinished {
                    shard: report.shard,
                    events: report.events,
                    arrivals: report.arrivals,
                    windows: report.windows.len(),
                    interrupted: report.interrupted,
                });
            }
            shards.push(report);
        }
        let mut windows = Vec::new();
        for report in &shards {
            merge_window_series(&mut windows, &report.windows);
        }
        // A watchdog-interrupted shard contributes a shorter series;
        // truncate the merge to the prefix every shard fully simulated
        // so partial results never mix complete and incomplete windows.
        // The truncation is announced prominently: a silently shortened
        // series reads as a complete run to anyone who does not think
        // to check the interrupted flags.
        if shards.iter().any(|r| r.interrupted) {
            let complete = shards.iter().map(|r| r.windows.len()).min().unwrap_or(0);
            let dropped = windows.len().saturating_sub(complete);
            windows.truncate(complete);
            if let Some(l) = log.as_deref_mut() {
                if let Some(first) = shards.iter().find(|r| r.interrupted) {
                    l.emit(HarnessEvent::WatchdogTruncation {
                        complete_windows: complete,
                        dropped,
                        first_tripped_shard: first.shard,
                        sim_nanos: first.truncated_at_nanos.unwrap_or(0),
                    });
                }
            }
        }
        if let Some(l) = log {
            for (i, w) in windows.iter().enumerate() {
                if w.coverage < 1.0 {
                    l.emit(HarnessEvent::ObserverGap {
                        window: i,
                        coverage: w.coverage,
                    });
                }
            }
            l.emit(HarnessEvent::RunFinished {
                events: shards.iter().map(|r| r.events).sum(),
                arrivals: shards.iter().map(|r| r.arrivals).sum(),
                windows: windows.len(),
                interrupted: shards.iter().any(|r| r.interrupted),
            });
        }
        Ok(ShardedRun {
            windows,
            shards,
            wall_secs: start.elapsed().as_secs_f64(),
        })
    }

    /// Build the machine-readable manifest of a finished run: seed,
    /// spec digest, totals, per-shard breakdown (with profiles when
    /// enabled), the merged metric snapshot, and — when a watchdog cut
    /// the run short — an explicit truncation record, so a partial
    /// result can never be mistaken for a complete one.
    pub fn manifest(&self, bin: &str, run: &ShardedRun) -> RunManifest {
        let digest = linkpad_obs::fnv1a(format!("{:?}", self.builder).as_bytes());
        let truncation = run
            .shards
            .iter()
            .find(|s| s.interrupted)
            .map(|s| Truncation {
                complete_windows: run.windows.len(),
                first_tripped_shard: s.shard,
                sim_nanos: s.truncated_at_nanos.unwrap_or(0),
            });
        RunManifest {
            bin: bin.to_string(),
            seed: self.builder.seed(),
            spec_digest: format!("fnv1a:{digest:016x}"),
            interrupted: run.interrupted(),
            truncation,
            wall_secs: run.wall_secs,
            events: run.events(),
            arrivals: run.arrivals(),
            windows: run.windows.len(),
            peak_pending: run.pending_peak(),
            shards: run
                .shards
                .iter()
                .map(|s| ShardManifest {
                    shard: s.shard,
                    flow_start: s.flow_range.0,
                    flow_count: s.flow_range.1,
                    events: s.events,
                    arrivals: s.arrivals,
                    windows: s.windows.len(),
                    pending_peak: s.pending_peak,
                    interrupted: s.interrupted,
                    profile: s.profile.clone(),
                })
                .collect(),
            metrics: run.merged_metrics(),
        }
    }

    /// One worker step: build (or reset-reuse) shard `s`'s sub-sim, run
    /// it, extract the trunk view.
    fn run_shard(
        &self,
        slot: &mut Option<(ShardShape, BuiltScenario)>,
        s: usize,
        secs: f64,
    ) -> Result<ShardReport, ScenarioError> {
        if let Some((target, remaining)) = &self.panic_budget {
            let armed = *target == s
                && remaining
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok();
            if armed {
                panic!("injected shard fault (test hook)");
            }
        }
        let shape = self.shard_shape(s)?;
        let scenario = match slot {
            // Same shape as the worker's previous shard: the scenario-
            // reset fast path (bit-identical to a fresh build — see
            // tests/reset_determinism.rs).
            Some((cached, scenario)) if *cached == shape => {
                scenario.reset(self.shard_seed(s));
                scenario
            }
            _ => {
                let built = self.shard_builder(s).build()?;
                &mut slot.insert((shape, built)).1
            }
        };
        match self.watchdog {
            Some((max_events, max_wall)) => scenario.sim.set_watchdog(max_events, max_wall),
            // A reused slot may carry a previous configuration.
            None => scenario.sim.clear_watchdog(),
        }
        if self.profiling {
            // (Re)start the profile at the run boundary; a reused slot
            // may carry a stale one.
            scenario.sim.enable_profiling();
        } else {
            scenario.sim.disable_profiling();
        }
        if self.tracing {
            // Same stale-state discipline as the profile.
            scenario.sim.enable_tracing();
        } else {
            scenario.sim.disable_tracing();
        }
        // Run in slices, sampling the pending-event population for the
        // memory high-water report. A tripped watchdog makes the
        // remaining slices no-ops.
        const SLICES: usize = 8;
        let mut pending_peak = 0;
        for _ in 0..SLICES {
            scenario.run_for_secs(secs / SLICES as f64);
            pending_peak = pending_peak.max(scenario.sim.pending_events());
        }
        let observer = scenario
            .aggregate
            .as_ref()
            .ok_or(ScenarioError::InvalidSharding(
                "shard built without aggregate handles",
            ))?
            .trunk_observer
            .clone()
            .ok_or(ScenarioError::InvalidSharding(
                "sharded runs merge window series; configure with_trunk_observer",
            ))?;
        let interrupted = scenario.sim.watchdog_tripped();
        let mut windows = observer.window_series();
        if interrupted {
            // Keep only windows the clock fully crossed: the window
            // containing the trip instant is incomplete (its counts
            // stop mid-window) and would read as a traffic dip.
            let window = SimDuration::from_secs_f64(self.spec()?.observer_window.unwrap_or(0.0));
            if window.as_nanos() > 0 {
                let complete = (scenario.sim.now().as_nanos() / window.as_nanos()) as usize;
                windows.truncate(complete);
            }
        }
        let arrivals = observer.arrivals();
        let metrics = window_metrics(&windows, arrivals, pending_peak);
        Ok(ShardReport {
            shard: s,
            flow_range: self.ranges[s],
            windows,
            arrivals,
            events: scenario.sim.events_processed(),
            pending_peak,
            interrupted,
            truncated_at_nanos: interrupted.then(|| scenario.sim.now().as_nanos()),
            metrics,
            profile: scenario.sim.profile_report(),
            trace: scenario.sim.trace_report(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_builder(seed: u64, flows: usize, shards: usize) -> ScenarioBuilder {
        ScenarioBuilder::aggregate(seed, flows)
            .with_payload_rate(10.0)
            .with_trunk_observer(0.1)
            .with_cohorts(4)
            .with_shards(shards)
    }

    #[test]
    fn one_shard_run_is_bit_identical_to_the_single_sim() {
        let builder = small_builder(31, 12, 1);
        let sharded = ShardedAggregate::new(builder.clone()).unwrap();
        let run = sharded.run_for_secs(2.0).unwrap();

        let mut single = builder.build().unwrap();
        single.run_for_secs(2.0);
        let obs = single
            .aggregate
            .as_ref()
            .unwrap()
            .trunk_observer
            .clone()
            .unwrap();
        // Full series equality — counts, bytes, and PIAT moments bit for
        // bit (merging a single shard into an empty series is exact).
        assert_eq!(run.windows, obs.window_series());
        assert_eq!(run.arrivals(), obs.arrivals());
    }

    #[test]
    fn merged_counts_match_the_unsharded_single_sim_bit_identically() {
        // Counts and bytes superpose: splitting the population over
        // shards must not move a single arrival across a window, even
        // though per-flow jitter draws differ between the runs (µs-scale
        // jitter vs ms-scale window margins).
        let t = 2.05; // end mid-window
        let single_builder = small_builder(32, 13, 1);
        let mut single = single_builder.build().unwrap();
        single.run_for_secs(t);
        let obs = single
            .aggregate
            .as_ref()
            .unwrap()
            .trunk_observer
            .clone()
            .unwrap();

        for shards in [2usize, 3, 5] {
            let sharded = ShardedAggregate::new(small_builder(32, 13, shards)).unwrap();
            let run = sharded.run_for_secs(t).unwrap();
            assert_eq!(run.shards.len(), shards);
            assert_eq!(run.counts(), obs.counts(), "{shards} shards");
            let single_bytes: Vec<u64> =
                obs.with_windows(|ws| ws.iter().map(|w| w.bytes).collect());
            let merged_bytes: Vec<u64> = run.windows.iter().map(|w| w.bytes).collect();
            assert_eq!(merged_bytes, single_bytes, "{shards} shards");
            assert_eq!(run.arrivals(), obs.arrivals(), "{shards} shards");
            // The pooled PIAT population is the union of the shards'.
            let pooled: u64 = run.windows.iter().map(|w| w.piats.count()).sum();
            let per_shard: u64 = run
                .shards
                .iter()
                .flat_map(|s| s.windows.iter().map(|w| w.piats.count()))
                .sum();
            assert_eq!(pooled, per_shard);
        }
    }

    #[test]
    fn position_dependent_phase_layouts_survive_any_split() {
        // Regression guards: (a) stratified phases are keyed to global
        // flow/member indices, so cohort grouping at shard boundaries
        // must not change the aggregate phase multiset; (b) the worker
        // reset-reuse fast path must not replay another shard's phase
        // layout (shape keys account for position-dependent layouts).
        // Both bugs showed up as merged counts diverging from the
        // unsharded single sim — in per-flow mode (a 3-shard run reused
        // shard 1's stratified topology for shard 2) and in cohort mode
        // (shard-local chunking restarted stratification at each range).
        for phases in [PhaseSpec::Stratified, PhaseSpec::Uniform { seed: 9 }] {
            for cohorts in [None, Some(4)] {
                let mut builder = ScenarioBuilder::aggregate(42, 13)
                    .with_payload_rate(10.0)
                    .with_trunk_observer(0.1)
                    .with_phases(phases);
                if let Some(k) = cohorts {
                    builder = builder.with_cohorts(k);
                }
                let mut single = builder.clone().build().unwrap();
                single.run_for_secs(1.55);
                let obs = single
                    .aggregate
                    .as_ref()
                    .unwrap()
                    .trunk_observer
                    .clone()
                    .unwrap();
                for shards in [2usize, 3] {
                    let run = ShardedAggregate::new(builder.clone().with_shards(shards))
                        .unwrap()
                        .run_for_secs_with_threads(1.55, 1)
                        .unwrap();
                    assert_eq!(
                        run.counts(),
                        obs.counts(),
                        "{phases:?} cohorts={cohorts:?} shards={shards}"
                    );
                }
            }
        }
    }

    #[test]
    fn reset_reuse_respects_cohort_grid_alignment() {
        // flows = 10, cohorts of 4, 3 shards → ranges (0,4), (4,3),
        // (7,3). On the global member grid, shard 1 partitions into
        // cohorts of sizes [1, 2] and shard 2 into [2, 1]: same flow
        // count, different alignment, different per-node jitter draw
        // sequences. The worker that just ran shard 1 must therefore
        // rebuild shard 2 instead of reset-reusing — regression guard
        // for the shape key omitting the cohort alignment (same counts,
        // bitwise-different PIAT moments, thread-schedule dependent).
        let sharded = ShardedAggregate::new(
            ScenarioBuilder::aggregate(55, 10)
                .with_payload_rate(10.0)
                .with_trunk_observer(0.1)
                .with_cohorts(4)
                .with_shards(3),
        )
        .unwrap();
        // threads = 1 forces one worker to run every shard in order —
        // the maximal-reuse schedule.
        let run = sharded.run_for_secs_with_threads(1.55, 1).unwrap();
        for s in 0..3 {
            let mut fresh = sharded.shard_builder(s).build().unwrap();
            fresh.run_for_secs(1.55);
            let obs = fresh
                .aggregate
                .as_ref()
                .unwrap()
                .trunk_observer
                .clone()
                .unwrap();
            assert_eq!(
                run.shards[s].windows,
                obs.window_series(),
                "shard {s} must match a fresh build bit-for-bit, moments included"
            );
        }
    }

    #[test]
    fn cohort_grouping_is_keyed_to_the_global_cohort_grid() {
        // A shard starting mid-cohort builds a leading partial cohort
        // aligned to the global grid, not a full local chunk: flows
        // 1..14 on a 4-grid are cohorts {1-4},{5-8},{9-12},{13}, so the
        // range [6, 7) → flows 6..13 splits as {6-8},{9-12}.
        let builder = ScenarioBuilder::aggregate(7, 14)
            .with_payload_rate(10.0)
            .with_trunk_observer(0.1)
            .with_cohorts(4)
            .with_flow_range(6, 7);
        let s = builder.build().unwrap();
        let sizes: Vec<u32> = s
            .aggregate
            .as_ref()
            .unwrap()
            .cohorts
            .iter()
            .map(|c| c.flows())
            .collect();
        assert_eq!(sizes, vec![3, 4]);
    }

    #[test]
    fn sharded_runs_are_deterministic_across_invocations_and_threads() {
        let sharded = ShardedAggregate::new(small_builder(33, 10, 3)).unwrap();
        let a = sharded.run_for_secs_with_threads(1.5, 1).unwrap();
        let b = sharded.run_for_secs_with_threads(1.5, 4).unwrap();
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.events(), b.events());
        for (ra, rb) in a.shards.iter().zip(&b.shards) {
            assert_eq!(ra.windows, rb.windows, "shard {}", ra.shard);
            assert_eq!(ra.flow_range, rb.flow_range);
        }
    }

    #[test]
    fn per_flow_mode_shards_too() {
        // Without cohorts: every flow a real gateway pair, split over
        // ranges — the small-N cross-check configuration.
        let builder = ScenarioBuilder::aggregate(34, 6)
            .with_payload_rate(10.0)
            .with_trunk_observer(0.1)
            .with_shards(2);
        let mut single = builder.clone().build().unwrap();
        single.run_for_secs(1.55);
        let obs = single
            .aggregate
            .as_ref()
            .unwrap()
            .trunk_observer
            .clone()
            .unwrap();
        let run = ShardedAggregate::new(builder)
            .unwrap()
            .run_for_secs(1.55)
            .unwrap();
        assert_eq!(run.counts(), obs.counts());
        // Only shard 0 carries the target; the other shard still
        // terminates its flows in receiver gateways.
        assert_eq!(run.shards[0].flow_range, (0, 3));
        assert_eq!(run.shards[1].flow_range, (3, 3));
    }

    #[test]
    fn observer_only_shard_has_zeroed_target_scaffold() {
        let builder = small_builder(35, 8, 2);
        let sharded = ShardedAggregate::new(builder).unwrap();
        let mut shard1 = sharded.shard_builder(1).build().unwrap();
        shard1.run_for_secs(1.0);
        assert_eq!(shard1.gateway.ticks(), 0, "no target gateway wired");
        assert_eq!(shard1.receiver.payload_delivered(), 0);
        assert_eq!(shard1.sender_tap.count(), 0);
        let agg = shard1.aggregate.as_ref().unwrap();
        assert!(agg.gateways.is_empty());
        let obs = agg.trunk_observer.clone().unwrap();
        assert!(obs.arrivals() > 0, "cohort traffic still observed");
    }

    #[test]
    fn a_panicked_shard_is_retried_and_the_merge_is_bit_identical() {
        let clean = ShardedAggregate::new(small_builder(61, 12, 3)).unwrap();
        let baseline = clean.run_for_secs_with_threads(1.5, 2).unwrap();
        let mut faulty = ShardedAggregate::new(small_builder(61, 12, 3)).unwrap();
        faulty.inject_panic_once(1);
        let run = faulty.run_for_secs_with_threads(1.5, 2).unwrap();
        // The retry rebuilt shard 1 from scratch; every series — per
        // shard and merged — matches the undisturbed run bit for bit.
        assert_eq!(run.windows, baseline.windows);
        assert_eq!(run.shards[1].windows, baseline.shards[1].windows);
        assert_eq!(run.arrivals(), baseline.arrivals());
        assert!(!run.interrupted());
    }

    #[test]
    fn a_twice_panicking_shard_fails_with_the_typed_error() {
        let mut faulty = ShardedAggregate::new(small_builder(62, 8, 2)).unwrap();
        faulty.inject_panics(1, 2);
        match faulty.run_for_secs_with_threads(1.0, 2) {
            Err(ScenarioError::ShardFailed { shard, cause }) => {
                assert_eq!(shard, 1);
                assert!(cause.contains("injected shard fault"), "cause: {cause}");
            }
            Ok(_) => panic!("expected ShardFailed, got a successful run"),
            Err(other) => panic!("expected ShardFailed, got {other}"),
        }
    }

    #[test]
    fn watchdog_budget_yields_a_truncated_but_valid_series() {
        let builder = small_builder(63, 12, 3);
        let full = ShardedAggregate::new(builder.clone())
            .unwrap()
            .run_for_secs_with_threads(2.0, 1)
            .unwrap();
        assert!(!full.interrupted());
        // An event budget a quarter of one shard's full run trips every
        // shard early.
        let budget = full.events() / full.shards.len() as u64 / 4;
        let bounded = ShardedAggregate::new(builder)
            .unwrap()
            .with_watchdog(Some(budget), None);
        let run = bounded.run_for_secs_with_threads(2.0, 1).unwrap();
        assert!(run.interrupted());
        assert!(run.shards.iter().all(|r| r.interrupted));
        assert!(
            !run.windows.is_empty() && run.windows.len() < full.windows.len(),
            "partial series: {} of {} windows",
            run.windows.len(),
            full.windows.len()
        );
        // The surviving prefix is bit-identical to the unbounded run:
        // truncation removed incomplete windows, never corrupted one.
        assert_eq!(run.windows[..], full.windows[..run.windows.len()]);
    }

    #[test]
    fn misconfigurations_fail_loudly() {
        // Not the aggregate family.
        let lab = ScenarioBuilder::lab(1);
        assert!(matches!(
            ShardedAggregate::new(lab),
            Err(ScenarioError::InvalidSharding(_))
        ));
        // No mergeable observer view.
        let no_obs = ScenarioBuilder::aggregate(1, 8).with_shards(2);
        assert!(matches!(
            ShardedAggregate::new(no_obs),
            Err(ScenarioError::InvalidSharding(_))
        ));
        // More shards than flows.
        let too_many = ScenarioBuilder::aggregate(1, 2)
            .with_trunk_observer(0.1)
            .with_shards(3);
        assert!(matches!(
            ShardedAggregate::new(too_many),
            Err(ScenarioError::InvalidSharding(_))
        ));
        // Pre-restricted range.
        let ranged = ScenarioBuilder::aggregate(1, 8)
            .with_trunk_observer(0.1)
            .with_flow_range(0, 4)
            .with_shards(2);
        assert!(matches!(
            ShardedAggregate::new(ranged),
            Err(ScenarioError::InvalidSharding(_))
        ));
    }
}
