//! A payload source that switches between rates over time.
//!
//! The paper's premise: "the rate of payload traffic from the sender may
//! be one of those m rates at a given time" — the adversary's job is to
//! detect *which*. [`SwitchingSource`] produces that hidden state:
//! it alternates between CBR rates on a fixed dwell schedule, and records
//! the ground-truth switch times so examples can score an adversary
//! against reality.

use linkpad_sim::engine::Context;
use linkpad_sim::node::{Node, NodeId};
use linkpad_sim::packet::{FlowId, PacketKind};
use linkpad_sim::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

const EMIT: u64 = 0;
const SWITCH: u64 = 1;

/// Ground-truth log of rate intervals.
#[derive(Debug, Clone)]
pub struct RateLog {
    inner: Rc<RefCell<Vec<(SimTime, f64)>>>,
}

impl RateLog {
    /// `(switch time, rate-from-then-on)` entries, in order.
    pub fn entries(&self) -> Vec<(SimTime, f64)> {
        self.inner.borrow().clone()
    }

    /// The rate in force at time `t` (`None` before the first entry).
    pub fn rate_at(&self, t: SimTime) -> Option<f64> {
        let entries = self.inner.borrow();
        entries
            .iter()
            .rev()
            .find(|&&(start, _)| start <= t)
            .map(|&(_, r)| r)
    }
}

/// CBR payload source alternating between two rates.
pub struct SwitchingSource {
    dst: NodeId,
    rates: [f64; 2],
    dwell: SimDuration,
    active: usize,
    packet_size: u32,
    log: Rc<RefCell<Vec<(SimTime, f64)>>>,
}

impl SwitchingSource {
    /// Alternate between `rates[0]` and `rates[1]` every `dwell`,
    /// starting with `rates[0]`.
    ///
    /// # Panics
    /// Panics if either rate is non-positive (configuration constant).
    pub fn new(
        dst: NodeId,
        rates: [f64; 2],
        dwell: SimDuration,
        packet_size: u32,
    ) -> (RateLog, Self) {
        assert!(
            rates.iter().all(|r| r.is_finite() && *r > 0.0),
            "switching rates must be positive"
        );
        let log = Rc::new(RefCell::new(Vec::new()));
        (
            RateLog {
                inner: Rc::clone(&log),
            },
            Self {
                dst,
                rates,
                dwell,
                active: 0,
                packet_size,
                log,
            },
        )
    }

    fn interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.rates[self.active])
    }
}

impl Node for SwitchingSource {
    fn on_packet(&mut self, _p: linkpad_sim::packet::Packet, _ctx: &mut Context<'_>) {}

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.log
            .borrow_mut()
            .push((ctx.now(), self.rates[self.active]));
        ctx.schedule_timer(self.interval(), EMIT);
        ctx.schedule_timer(self.dwell, SWITCH);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_>) {
        match tag {
            EMIT => {
                let pkt = ctx.spawn_packet(FlowId::PADDED, PacketKind::Payload, self.packet_size);
                ctx.send_now(self.dst, pkt);
                ctx.schedule_timer(self.interval(), EMIT);
            }
            SWITCH => {
                self.active = 1 - self.active;
                self.log
                    .borrow_mut()
                    .push((ctx.now(), self.rates[self.active]));
                ctx.schedule_timer(self.dwell, SWITCH);
            }
            other => debug_assert!(false, "unknown timer tag {other}"),
        }
    }

    fn reset(&mut self) {
        self.active = 0;
        self.log.borrow_mut().clear();
    }

    fn label(&self) -> &str {
        "switching-source"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_sim::engine::SimBuilder;
    use linkpad_sim::sink::Sink;
    use linkpad_stats::rng::MasterSeed;

    #[test]
    fn switches_rates_on_schedule() {
        let mut b = SimBuilder::new(MasterSeed::new(1));
        let (sink_handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let (log, src) =
            SwitchingSource::new(sink_id, [10.0, 40.0], SimDuration::from_secs_f64(5.0), 500);
        b.add_node(Box::new(src));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(10.0));
        // ~50 packets in the low phase + ~200 in the high phase.
        let total = sink_handle.count();
        assert!((200..=260).contains(&total), "total = {total}");
        let entries = log.entries();
        assert_eq!(entries.len(), 3); // start, 5s, 10s
        assert_eq!(entries[0].1, 10.0);
        assert_eq!(entries[1].1, 40.0);
        assert_eq!(entries[2].1, 10.0);
    }

    #[test]
    fn rate_at_reports_ground_truth() {
        let mut b = SimBuilder::new(MasterSeed::new(2));
        let (_h, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let (log, src) =
            SwitchingSource::new(sink_id, [10.0, 40.0], SimDuration::from_secs_f64(2.0), 500);
        b.add_node(Box::new(src));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(7.0));
        assert_eq!(log.rate_at(SimTime::from_secs_f64(1.0)), Some(10.0));
        assert_eq!(log.rate_at(SimTime::from_secs_f64(3.0)), Some(40.0));
        assert_eq!(log.rate_at(SimTime::from_secs_f64(5.5)), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn zero_rate_panics() {
        let mut b = SimBuilder::new(MasterSeed::new(3));
        let (_h, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let _ = SwitchingSource::new(sink_id, [0.0, 40.0], SimDuration::from_secs_f64(1.0), 500);
    }
}
