//! Cross-traffic models: packet-size mixes, utilization targeting, and
//! diurnal (hour-of-day) utilization profiles.
//!
//! The paper's Fig. 6 sweeps the *shared-link utilization* produced by a
//! cross-traffic workstation; Fig. 8 observes detection rate across a
//! full day on a campus network (2003-03-24) and on the Ohio→Texas
//! Internet path (2003-03-26), where the only thing that changes hour to
//! hour is how much crossover traffic the route carries. These helpers
//! construct cross sources that hit a target utilization and modulate it
//! by hour of day.

use linkpad_stats::dist::{Categorical, ContinuousDist, Exponential, Pareto};
use linkpad_stats::StatsError;

/// A packet-size mixture for cross traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeMix {
    /// Internet-like trimodal mix: 40% 64 B (ACKs), 35% 550 B, 25% 1500 B.
    InternetTrimodal,
    /// All packets 1500 B (bulk transfer).
    Bulk1500,
    /// All packets 64 B (interactive).
    Interactive64,
}

impl SizeMix {
    /// Materialize the size distribution (bytes).
    pub fn law(&self) -> Result<Categorical, StatsError> {
        match self {
            SizeMix::InternetTrimodal => {
                Categorical::new(&[(64.0, 0.40), (550.0, 0.35), (1500.0, 0.25)])
            }
            SizeMix::Bulk1500 => Categorical::new(&[(1500.0, 1.0)]),
            SizeMix::Interactive64 => Categorical::new(&[(64.0, 1.0)]),
        }
    }

    /// Mean packet size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        match self {
            SizeMix::InternetTrimodal => 64.0 * 0.40 + 550.0 * 0.35 + 1500.0 * 0.25,
            SizeMix::Bulk1500 => 1500.0,
            SizeMix::Interactive64 => 64.0,
        }
    }
}

/// Cross-traffic packet rate (packets/s) that loads a link of
/// `link_bps` to `utilization` with packets of `mean_size_bytes`.
pub fn cross_rate_for_utilization(
    utilization: f64,
    link_bps: f64,
    mean_size_bytes: f64,
) -> Result<f64, StatsError> {
    if !(0.0..1.0).contains(&utilization) {
        return Err(StatsError::InvalidProbability {
            what: "target utilization",
            value: utilization,
        });
    }
    if link_bps.is_nan() || link_bps <= 0.0 || mean_size_bytes.is_nan() || mean_size_bytes <= 0.0 {
        return Err(StatsError::NonPositive {
            what: "link_bps / mean_size_bytes",
            value: link_bps.min(mean_size_bytes),
        });
    }
    Ok(utilization * link_bps / (8.0 * mean_size_bytes))
}

/// Inter-arrival law for a cross source at `rate` packets/s.
///
/// `bursty = false` → Poisson (exponential gaps). `bursty = true` →
/// Pareto gaps with tail index 2.1 — just above the infinite-variance
/// threshold, so the law keeps finite moments while being far more
/// clumped than Poisson (CV² = 1/(α(α−2)) ≈ 4.8 vs 1) — scaled to the
/// same mean rate.
pub fn cross_interval_law(rate: f64, bursty: bool) -> Result<Box<dyn ContinuousDist>, StatsError> {
    if bursty {
        let alpha = 2.1;
        // Pareto mean = α·x_m/(α−1) = 1/rate  ⇒  x_m = (α−1)/(α·rate)
        let x_m = (alpha - 1.0) / (alpha * rate);
        Ok(Box::new(Pareto::new(x_m, alpha)?))
    } else {
        Ok(Box::new(Exponential::with_rate(rate)?))
    }
}

/// Hour-of-day utilization profile: `u(h) = base + amp·bump(h)` where
/// `bump` peaks mid-afternoon and bottoms out around `trough_hour`.
///
/// The paper's observation (Fig. 8b): the adversary does best "during
/// periods of relatively low network activity (such as at 2:00 AM)".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalProfile {
    /// Utilization at the nightly trough.
    pub base: f64,
    /// Additional utilization at the afternoon peak.
    pub amplitude: f64,
    /// Hour (0–24) of minimum load.
    pub trough_hour: f64,
}

impl DiurnalProfile {
    /// Create a profile. `base ≥ 0`, `base + amplitude < 1`.
    pub fn new(base: f64, amplitude: f64, trough_hour: f64) -> Result<Self, StatsError> {
        if !(0.0..1.0).contains(&base) || base + amplitude >= 1.0 || amplitude < 0.0 {
            return Err(StatsError::InvalidProbability {
                what: "diurnal profile utilization",
                value: base + amplitude,
            });
        }
        Ok(Self {
            base,
            amplitude,
            trough_hour: trough_hour.rem_euclid(24.0),
        })
    }

    /// The campus preset: light load, ρ ∈ [0.03, 0.18]. A medium-size
    /// enterprise network where "the crossover traffic has limited
    /// influence on the padded traffic's PIAT" (paper §5.3 obs. 1).
    pub fn campus() -> Self {
        Self {
            base: 0.03,
            amplitude: 0.15,
            trough_hour: 3.0,
        }
    }

    /// The WAN preset: heavy load, ρ ∈ [0.25, 0.60]. A 15-router Internet
    /// path where PIAT "is seriously distorted with a relatively large
    /// σ_net" (paper §5.3 obs. 2).
    pub fn wan() -> Self {
        Self {
            base: 0.25,
            amplitude: 0.35,
            trough_hour: 3.0,
        }
    }

    /// Utilization at hour `h` (fractional, wraps mod 24).
    ///
    /// Shape: raised cosine with minimum at `trough_hour` — smooth,
    /// periodic, and monotone from trough to peak in each half-day.
    pub fn utilization_at_hour(&self, h: f64) -> f64 {
        let phase = (h - self.trough_hour).rem_euclid(24.0) / 24.0 * std::f64::consts::TAU;
        self.base + self.amplitude * 0.5 * (1.0 - phase.cos())
    }

    /// Utilizations sampled at each whole hour 0..24.
    pub fn hourly(&self) -> Vec<f64> {
        (0..24)
            .map(|h| self.utilization_at_hour(h as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_stats::rng::MasterSeed;

    #[test]
    fn size_mix_means() {
        assert!((SizeMix::InternetTrimodal.mean_bytes() - 593.1).abs() < 0.2);
        assert_eq!(SizeMix::Bulk1500.mean_bytes(), 1500.0);
        let law = SizeMix::InternetTrimodal.law().unwrap();
        assert!((law.mean() - SizeMix::InternetTrimodal.mean_bytes()).abs() < 1e-9);
    }

    #[test]
    fn utilization_to_rate_round_trips() {
        // ρ=0.4 on 100 Mb/s with 500 B packets → 10_000 pps.
        let rate = cross_rate_for_utilization(0.4, 100e6, 500.0).unwrap();
        assert!((rate - 10_000.0).abs() < 1e-9);
        // Offered load back: rate·8·size/bw = ρ
        assert!((rate * 8.0 * 500.0 / 100e6 - 0.4).abs() < 1e-12);
    }

    #[test]
    fn utilization_bounds_are_enforced() {
        assert!(cross_rate_for_utilization(1.0, 1e6, 500.0).is_err());
        assert!(cross_rate_for_utilization(-0.1, 1e6, 500.0).is_err());
        assert!(cross_rate_for_utilization(0.5, 0.0, 500.0).is_err());
        assert!(cross_rate_for_utilization(0.0, 1e6, 500.0).is_ok());
    }

    #[test]
    fn interval_laws_have_matching_rates() {
        let mut rng = MasterSeed::new(9).stream(0);
        for bursty in [false, true] {
            let law = cross_interval_law(1000.0, bursty).unwrap();
            assert!((law.mean() - 1e-3).abs() < 1e-12, "bursty={bursty}");
            let mut acc = 0.0;
            for _ in 0..50_000 {
                acc += law.sample(&mut rng);
            }
            let emp = acc / 50_000.0;
            assert!((emp - 1e-3).abs() < 1e-4, "bursty={bursty}: {emp}");
        }
    }

    #[test]
    fn bursty_law_is_more_variable() {
        let poisson = cross_interval_law(100.0, false).unwrap();
        let pareto = cross_interval_law(100.0, true).unwrap();
        assert!(pareto.variance() > poisson.variance());
    }

    #[test]
    fn diurnal_profile_trough_and_peak() {
        let p = DiurnalProfile::wan();
        let at_trough = p.utilization_at_hour(3.0);
        let at_peak = p.utilization_at_hour(15.0);
        assert!((at_trough - p.base).abs() < 1e-12);
        assert!((at_peak - (p.base + p.amplitude)).abs() < 1e-12);
        // Monotone from trough to peak.
        let mut prev = at_trough;
        for h in 4..=15 {
            let u = p.utilization_at_hour(h as f64);
            assert!(u >= prev - 1e-12);
            prev = u;
        }
    }

    #[test]
    fn diurnal_profile_wraps_midnight() {
        let p = DiurnalProfile::campus();
        assert!((p.utilization_at_hour(27.0) - p.utilization_at_hour(3.0)).abs() < 1e-12);
        assert!((p.utilization_at_hour(-21.0) - p.utilization_at_hour(3.0)).abs() < 1e-12);
    }

    #[test]
    fn hourly_has_24_entries_below_one() {
        for p in [DiurnalProfile::campus(), DiurnalProfile::wan()] {
            let hours = p.hourly();
            assert_eq!(hours.len(), 24);
            assert!(hours.iter().all(|&u| (0.0..1.0).contains(&u)));
        }
    }

    #[test]
    fn profile_validation() {
        assert!(DiurnalProfile::new(0.5, 0.6, 3.0).is_err()); // would exceed 1
        assert!(DiurnalProfile::new(-0.1, 0.2, 3.0).is_err());
        assert!(DiurnalProfile::new(0.2, 0.3, 26.0).is_ok()); // hour wraps
    }
}
