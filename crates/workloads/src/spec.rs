//! Cloneable experiment specifications.
//!
//! Sweeps describe hundreds of runs; distributions and schedules hold
//! boxed trait objects and are not `Clone`, so configuration travels as
//! plain-data *specs* that are materialized into live objects per run.

use linkpad_core::schedule::{AdaptivePadding, LinkSchedule, PaddingSchedule};
use linkpad_stats::dist::{Categorical, ContinuousDist, Deterministic, Exponential, Uniform};
use linkpad_stats::StatsError;

/// Payload traffic law for the protected flow (rate in packets/second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PayloadSpec {
    /// Constant bit rate: one packet every `1/rate` seconds.
    Cbr {
        /// Packets per second.
        rate: f64,
    },
    /// Poisson arrivals at `rate` packets per second.
    Poisson {
        /// Packets per second.
        rate: f64,
    },
}

impl PayloadSpec {
    /// The mean rate in packets/second.
    pub fn rate(&self) -> f64 {
        match *self {
            PayloadSpec::Cbr { rate } | PayloadSpec::Poisson { rate } => rate,
        }
    }

    /// Materialize the inter-arrival law.
    pub fn interval_law(&self) -> Result<Box<dyn ContinuousDist>, StatsError> {
        match *self {
            PayloadSpec::Cbr { rate } => {
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(StatsError::NonPositive {
                        what: "payload rate",
                        value: rate,
                    });
                }
                Ok(Box::new(Deterministic::new(1.0 / rate)?))
            }
            PayloadSpec::Poisson { rate } => Ok(Box::new(Exponential::with_rate(rate)?)),
        }
    }
}

/// Padding schedule specification (mirrors `linkpad_core::schedule`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleSpec {
    /// Constant interval timer at period τ.
    Cit,
    /// VIT with truncated-normal interval law and the given σ_T (s).
    VitTruncatedNormal {
        /// Standard deviation of the designed timer interval, seconds.
        sigma_t: f64,
    },
    /// VIT with a uniform interval law of the given σ_T (s) — ablation.
    VitUniform {
        /// Standard deviation of the designed timer interval, seconds.
        sigma_t: f64,
    },
    /// VIT with exponential intervals (σ_T = τ) — ablation.
    VitExponential,
    /// Constant-rate link padding: a periodic timer at `rate` packets
    /// per second (σ_T = 0; the period is `1/rate`, not τ).
    ConstantRate {
        /// Padded-packet rate, packets per second.
        rate: f64,
    },
    /// Adaptive padding: the Idle/Burst/Gap state machine at base
    /// period τ (canonical gap laws scaled from τ).
    AdaptivePadding {
        /// React to client traffic by opening a burst immediately.
        /// Reactive machines couple the padding clock to per-member
        /// client traffic, so they have **no stochastic-cohort
        /// support** — cohort builds reject them with
        /// `ScenarioError::CohortUnsupported`.
        reactive: bool,
    },
}

impl ScheduleSpec {
    /// Materialize against a mean period `tau` (seconds) into the
    /// gateway-facing [`LinkSchedule`] (a stateless law for the timer
    /// families, the stateful machine for adaptive padding).
    pub fn to_schedule(&self, tau: f64) -> Result<LinkSchedule, StatsError> {
        match *self {
            ScheduleSpec::Cit => PaddingSchedule::cit(tau).map(Into::into),
            ScheduleSpec::VitTruncatedNormal { sigma_t } => {
                PaddingSchedule::vit_truncated_normal(tau, sigma_t).map(Into::into)
            }
            ScheduleSpec::VitUniform { sigma_t } => {
                PaddingSchedule::vit_uniform(tau, sigma_t).map(Into::into)
            }
            ScheduleSpec::VitExponential => PaddingSchedule::vit_exponential(tau).map(Into::into),
            ScheduleSpec::ConstantRate { rate } => {
                PaddingSchedule::constant_rate(rate).map(Into::into)
            }
            ScheduleSpec::AdaptivePadding { reactive } => if reactive {
                AdaptivePadding::reactive(tau)
            } else {
                AdaptivePadding::new(tau)
            }
            .map(Into::into),
        }
    }

    /// The designed σ_T this spec yields at period `tau`.
    pub fn sigma_t(&self, tau: f64) -> f64 {
        match *self {
            ScheduleSpec::Cit | ScheduleSpec::ConstantRate { .. } => 0.0,
            ScheduleSpec::VitTruncatedNormal { sigma_t } | ScheduleSpec::VitUniform { sigma_t } => {
                sigma_t
            }
            ScheduleSpec::VitExponential => tau,
            ScheduleSpec::AdaptivePadding { .. } => AdaptivePadding::new(tau)
                .map(|m| m.sigma_t())
                .unwrap_or(0.0),
        }
    }

    /// Mean emission interval this spec yields at base period `tau`:
    /// τ for the timer families, `1/rate` for constant-rate, the
    /// stationary machine mean for adaptive padding. The quantity the
    /// flow-count estimator's `window_over_interval` must use.
    pub fn mean_interval(&self, tau: f64) -> f64 {
        match *self {
            ScheduleSpec::Cit
            | ScheduleSpec::VitTruncatedNormal { .. }
            | ScheduleSpec::VitUniform { .. }
            | ScheduleSpec::VitExponential => tau,
            ScheduleSpec::ConstantRate { rate } => 1.0 / rate,
            ScheduleSpec::AdaptivePadding { .. } => AdaptivePadding::new(tau)
                .map(|m| m.mean_interval_secs())
                .unwrap_or(tau),
        }
    }

    /// Whether emission instants are a deterministic function of the
    /// configuration (no RNG draws on the timer path) — the regimes
    /// where cohort superposition is bit-exact.
    pub fn is_deterministic(&self) -> bool {
        matches!(self, ScheduleSpec::Cit | ScheduleSpec::ConstantRate { .. })
    }

    /// Whether cohort aggregation supports this defence. Every law
    /// family runs in a cohort (deterministic combs for CIT and
    /// constant-rate, the per-member heap otherwise), as does
    /// non-reactive adaptive padding; *reactive* adaptive padding
    /// couples the padding clock to per-member client traffic, which
    /// the cohort's shared Bernoulli absorption model cannot represent.
    pub fn cohort_support(&self) -> Result<(), &'static str> {
        match self {
            ScheduleSpec::AdaptivePadding { reactive: true } => Err(
                "reactive adaptive padding responds to per-member client traffic, \
                 which cohort aggregation does not model",
            ),
            _ => Ok(()),
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            ScheduleSpec::Cit => "CIT",
            ScheduleSpec::VitTruncatedNormal { .. } => "VIT-tn",
            ScheduleSpec::VitUniform { .. } => "VIT-u",
            ScheduleSpec::VitExponential => "VIT-exp",
            ScheduleSpec::ConstantRate { .. } => "constant-rate",
            ScheduleSpec::AdaptivePadding { reactive: false } => "adaptive",
            ScheduleSpec::AdaptivePadding { reactive: true } => "adaptive-reactive",
        }
    }
}

/// On-the-wire packet-size model: how the defence pads or varies the
/// size of every emitted packet (payload and dummy alike — remark 3's
/// "all packets look identical" constraint applies per defence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PayloadModel {
    /// Every packet is exactly the scenario's base packet size
    /// (the historical behaviour; no size law installed, zero draws).
    Fixed,
    /// Every packet padded up to a fixed MTU — deterministic, so
    /// bit-exactness is preserved while the byte rate shifts.
    MtuPadded {
        /// Wire size of every packet, bytes.
        mtu: u32,
    },
    /// Sizes uniform over `lo..=hi` whole bytes (stochastic).
    Uniform {
        /// Smallest wire size, bytes (≥ 1).
        lo: u32,
        /// Largest wire size, bytes (≥ `lo`).
        hi: u32,
    },
    /// The canonical empirical packet-size mix
    /// `{64 B: 0.5, 550 B: 0.3, 1500 B: 0.2}` (stochastic).
    Sampled,
}

impl PayloadModel {
    /// Materialize the wire-size law against the scenario's base packet
    /// size. `None` means "no law": every packet is exactly `base`
    /// bytes and the emit path makes zero size draws.
    pub fn size_law(&self, base: u32) -> Result<Option<Box<dyn ContinuousDist>>, StatsError> {
        match *self {
            PayloadModel::Fixed => {
                let _ = base;
                Ok(None)
            }
            PayloadModel::MtuPadded { mtu } => {
                if mtu == 0 {
                    return Err(StatsError::NonPositive {
                        what: "payload model MTU",
                        value: 0.0,
                    });
                }
                Ok(Some(Box::new(Deterministic::new(f64::from(mtu))?)))
            }
            PayloadModel::Uniform { lo, hi } => {
                if lo == 0 || hi < lo {
                    return Err(StatsError::NonPositive {
                        what: "payload model uniform size range",
                        value: f64::from(hi) - f64::from(lo),
                    });
                }
                // Half-open [lo, hi+1) floored at the emit site yields
                // whole bytes uniform over lo..=hi.
                Ok(Some(Box::new(Uniform::new(
                    f64::from(lo),
                    f64::from(hi) + 1.0,
                )?)))
            }
            PayloadModel::Sampled => Ok(Some(Box::new(Categorical::new(&[
                (64.0, 0.5),
                (550.0, 0.3),
                (1500.0, 0.2),
            ])?))),
        }
    }

    /// Mean wire size in bytes under this model (with base size `base`).
    pub fn mean_bytes(&self, base: u32) -> f64 {
        match *self {
            PayloadModel::Fixed => f64::from(base),
            PayloadModel::MtuPadded { mtu } => f64::from(mtu),
            PayloadModel::Uniform { lo, hi } => (f64::from(lo) + f64::from(hi)) / 2.0,
            PayloadModel::Sampled => 64.0 * 0.5 + 550.0 * 0.3 + 1500.0 * 0.2,
        }
    }

    /// Whether sizes are drawn from the RNG (breaks bit-exact cohort
    /// equivalence; distributional contracts still hold).
    pub fn is_stochastic(&self) -> bool {
        matches!(self, PayloadModel::Uniform { .. } | PayloadModel::Sampled)
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            PayloadModel::Fixed => "fixed",
            PayloadModel::MtuPadded { .. } => "mtu-padded",
            PayloadModel::Uniform { .. } => "uniform",
            PayloadModel::Sampled => "sampled",
        }
    }
}

/// Cross-traffic configuration for one hop of the unprotected path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopSpec {
    /// Target utilization of the hop's shared egress link contributed by
    /// cross traffic (0 disables the cross source).
    pub utilization: f64,
    /// Bursty (Pareto inter-arrival) rather than Poisson cross traffic
    /// (packet-level hops only).
    pub bursty: bool,
    /// Model the hop as fluid background load (M/M/1 stationary wait
    /// injection) instead of simulating individual cross packets. Exact
    /// for padding probes far slower than the queue's relaxation time;
    /// used for the long campus/WAN chains.
    pub background: bool,
}

impl HopSpec {
    /// A quiet hop (no cross traffic).
    pub fn quiet() -> Self {
        Self {
            utilization: 0.0,
            bursty: false,
            background: false,
        }
    }

    /// A packet-level Poisson-loaded hop at the given utilization.
    pub fn poisson(utilization: f64) -> Self {
        Self {
            utilization,
            bursty: false,
            background: false,
        }
    }

    /// A packet-level bursty hop at the given utilization.
    pub fn bursty(utilization: f64) -> Self {
        Self {
            utilization,
            bursty: true,
            background: false,
        }
    }

    /// A fluid background-load hop at the given utilization.
    pub fn background(utilization: f64) -> Self {
        Self {
            utilization,
            bursty: false,
            background: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_stats::rng::MasterSeed;

    #[test]
    fn cbr_interval_is_deterministic() {
        let law = PayloadSpec::Cbr { rate: 10.0 }.interval_law().unwrap();
        let mut rng = MasterSeed::new(1).stream(0);
        for _ in 0..5 {
            assert_eq!(law.sample(&mut rng), 0.1);
        }
        assert_eq!(PayloadSpec::Cbr { rate: 10.0 }.rate(), 10.0);
    }

    #[test]
    fn poisson_interval_has_right_mean() {
        let law = PayloadSpec::Poisson { rate: 40.0 }.interval_law().unwrap();
        assert!((law.mean() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn bad_rates_error() {
        assert!(PayloadSpec::Cbr { rate: 0.0 }.interval_law().is_err());
        assert!(PayloadSpec::Cbr { rate: -3.0 }.interval_law().is_err());
        assert!(PayloadSpec::Poisson { rate: 0.0 }.interval_law().is_err());
    }

    #[test]
    fn schedule_specs_materialize() {
        let tau = 0.010;
        assert_eq!(ScheduleSpec::Cit.to_schedule(tau).unwrap().sigma_t(), 0.0);
        let v = ScheduleSpec::VitTruncatedNormal { sigma_t: 1e-3 }
            .to_schedule(tau)
            .unwrap();
        assert!((v.sigma_t() - 1e-3).abs() < 1e-9);
        assert!(ScheduleSpec::VitUniform { sigma_t: 2e-3 }
            .to_schedule(tau)
            .is_ok());
        assert!(ScheduleSpec::VitExponential.to_schedule(tau).is_ok());
    }

    #[test]
    fn sigma_t_reporting_matches_spec() {
        assert_eq!(ScheduleSpec::Cit.sigma_t(0.01), 0.0);
        assert_eq!(
            ScheduleSpec::VitTruncatedNormal { sigma_t: 5e-4 }.sigma_t(0.01),
            5e-4
        );
        assert_eq!(ScheduleSpec::VitExponential.sigma_t(0.01), 0.01);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ScheduleSpec::Cit.name(), "CIT");
        assert_eq!(
            ScheduleSpec::VitTruncatedNormal { sigma_t: 1e-3 }.name(),
            "VIT-tn"
        );
        assert_eq!(
            ScheduleSpec::ConstantRate { rate: 125.0 }.name(),
            "constant-rate"
        );
        assert_eq!(
            ScheduleSpec::AdaptivePadding { reactive: false }.name(),
            "adaptive"
        );
        assert_eq!(
            ScheduleSpec::AdaptivePadding { reactive: true }.name(),
            "adaptive-reactive"
        );
    }

    #[test]
    fn constant_rate_spec_materializes_a_comb() {
        let s = ScheduleSpec::ConstantRate { rate: 125.0 };
        let sched = s.to_schedule(0.010).unwrap();
        assert_eq!(sched.sigma_t(), 0.0);
        assert!((sched.mean_interval_secs() - 0.008).abs() < 1e-12);
        assert!((s.mean_interval(0.010) - 0.008).abs() < 1e-12);
        assert!(s.is_deterministic());
        assert!(s.cohort_support().is_ok());
        assert!(ScheduleSpec::ConstantRate { rate: 0.0 }
            .to_schedule(0.010)
            .is_err());
    }

    #[test]
    fn adaptive_spec_materializes_the_machine() {
        let s = ScheduleSpec::AdaptivePadding { reactive: false };
        let sched = s.to_schedule(0.010).unwrap();
        assert!(sched.sigma_t() > 0.0);
        let mean = sched.mean_interval_secs();
        assert!((s.mean_interval(0.010) - mean).abs() < 1e-12);
        assert!(!s.is_deterministic());
        assert!(s.cohort_support().is_ok());
        // Reactive machines have no stochastic-cohort support.
        assert!(ScheduleSpec::AdaptivePadding { reactive: true }
            .cohort_support()
            .is_err());
    }

    #[test]
    fn payload_models_materialize_and_report_means() {
        assert!(PayloadModel::Fixed.size_law(500).unwrap().is_none());
        assert_eq!(PayloadModel::Fixed.mean_bytes(500), 500.0);
        assert!(!PayloadModel::Fixed.is_stochastic());

        let mtu = PayloadModel::MtuPadded { mtu: 1500 };
        let law = mtu.size_law(500).unwrap().unwrap();
        let mut rng = MasterSeed::new(3).stream(0);
        assert_eq!(law.sample(&mut rng), 1500.0);
        assert_eq!(mtu.mean_bytes(500), 1500.0);
        assert!(!mtu.is_stochastic());

        let uni = PayloadModel::Uniform { lo: 300, hi: 900 };
        let law = uni.size_law(500).unwrap().unwrap();
        for _ in 0..200 {
            let v = law.sample(&mut rng).floor();
            assert!((300.0..=900.0).contains(&v));
        }
        assert_eq!(uni.mean_bytes(500), 600.0);
        assert!(uni.is_stochastic());

        let mix = PayloadModel::Sampled;
        let law = mix.size_law(500).unwrap().unwrap();
        for _ in 0..200 {
            let v = law.sample(&mut rng);
            assert!(v == 64.0 || v == 550.0 || v == 1500.0);
        }
        assert!((mix.mean_bytes(500) - 497.0).abs() < 1e-9);
        assert_eq!(mix.name(), "sampled");
    }

    #[test]
    fn invalid_payload_models_error() {
        assert!(PayloadModel::MtuPadded { mtu: 0 }.size_law(500).is_err());
        assert!(PayloadModel::Uniform { lo: 0, hi: 10 }
            .size_law(500)
            .is_err());
        assert!(PayloadModel::Uniform { lo: 900, hi: 300 }
            .size_law(500)
            .is_err());
    }

    #[test]
    fn hop_constructors() {
        assert_eq!(HopSpec::quiet().utilization, 0.0);
        assert!(!HopSpec::poisson(0.3).bursty);
        assert!(HopSpec::bursty(0.3).bursty);
    }
}
