//! Cloneable experiment specifications.
//!
//! Sweeps describe hundreds of runs; distributions and schedules hold
//! boxed trait objects and are not `Clone`, so configuration travels as
//! plain-data *specs* that are materialized into live objects per run.

use linkpad_core::schedule::PaddingSchedule;
use linkpad_stats::dist::{ContinuousDist, Deterministic, Exponential};
use linkpad_stats::StatsError;

/// Payload traffic law for the protected flow (rate in packets/second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PayloadSpec {
    /// Constant bit rate: one packet every `1/rate` seconds.
    Cbr {
        /// Packets per second.
        rate: f64,
    },
    /// Poisson arrivals at `rate` packets per second.
    Poisson {
        /// Packets per second.
        rate: f64,
    },
}

impl PayloadSpec {
    /// The mean rate in packets/second.
    pub fn rate(&self) -> f64 {
        match *self {
            PayloadSpec::Cbr { rate } | PayloadSpec::Poisson { rate } => rate,
        }
    }

    /// Materialize the inter-arrival law.
    pub fn interval_law(&self) -> Result<Box<dyn ContinuousDist>, StatsError> {
        match *self {
            PayloadSpec::Cbr { rate } => {
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(StatsError::NonPositive {
                        what: "payload rate",
                        value: rate,
                    });
                }
                Ok(Box::new(Deterministic::new(1.0 / rate)?))
            }
            PayloadSpec::Poisson { rate } => Ok(Box::new(Exponential::with_rate(rate)?)),
        }
    }
}

/// Padding schedule specification (mirrors `linkpad_core::schedule`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleSpec {
    /// Constant interval timer at period τ.
    Cit,
    /// VIT with truncated-normal interval law and the given σ_T (s).
    VitTruncatedNormal {
        /// Standard deviation of the designed timer interval, seconds.
        sigma_t: f64,
    },
    /// VIT with a uniform interval law of the given σ_T (s) — ablation.
    VitUniform {
        /// Standard deviation of the designed timer interval, seconds.
        sigma_t: f64,
    },
    /// VIT with exponential intervals (σ_T = τ) — ablation.
    VitExponential,
}

impl ScheduleSpec {
    /// Materialize against a mean period `tau` (seconds).
    pub fn to_schedule(&self, tau: f64) -> Result<PaddingSchedule, StatsError> {
        match *self {
            ScheduleSpec::Cit => PaddingSchedule::cit(tau),
            ScheduleSpec::VitTruncatedNormal { sigma_t } => {
                PaddingSchedule::vit_truncated_normal(tau, sigma_t)
            }
            ScheduleSpec::VitUniform { sigma_t } => PaddingSchedule::vit_uniform(tau, sigma_t),
            ScheduleSpec::VitExponential => PaddingSchedule::vit_exponential(tau),
        }
    }

    /// The designed σ_T this spec yields at period `tau`.
    pub fn sigma_t(&self, tau: f64) -> f64 {
        match *self {
            ScheduleSpec::Cit => 0.0,
            ScheduleSpec::VitTruncatedNormal { sigma_t } | ScheduleSpec::VitUniform { sigma_t } => {
                sigma_t
            }
            ScheduleSpec::VitExponential => tau,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            ScheduleSpec::Cit => "CIT",
            ScheduleSpec::VitTruncatedNormal { .. } => "VIT-tn",
            ScheduleSpec::VitUniform { .. } => "VIT-u",
            ScheduleSpec::VitExponential => "VIT-exp",
        }
    }
}

/// Cross-traffic configuration for one hop of the unprotected path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopSpec {
    /// Target utilization of the hop's shared egress link contributed by
    /// cross traffic (0 disables the cross source).
    pub utilization: f64,
    /// Bursty (Pareto inter-arrival) rather than Poisson cross traffic
    /// (packet-level hops only).
    pub bursty: bool,
    /// Model the hop as fluid background load (M/M/1 stationary wait
    /// injection) instead of simulating individual cross packets. Exact
    /// for padding probes far slower than the queue's relaxation time;
    /// used for the long campus/WAN chains.
    pub background: bool,
}

impl HopSpec {
    /// A quiet hop (no cross traffic).
    pub fn quiet() -> Self {
        Self {
            utilization: 0.0,
            bursty: false,
            background: false,
        }
    }

    /// A packet-level Poisson-loaded hop at the given utilization.
    pub fn poisson(utilization: f64) -> Self {
        Self {
            utilization,
            bursty: false,
            background: false,
        }
    }

    /// A packet-level bursty hop at the given utilization.
    pub fn bursty(utilization: f64) -> Self {
        Self {
            utilization,
            bursty: true,
            background: false,
        }
    }

    /// A fluid background-load hop at the given utilization.
    pub fn background(utilization: f64) -> Self {
        Self {
            utilization,
            bursty: false,
            background: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_stats::rng::MasterSeed;

    #[test]
    fn cbr_interval_is_deterministic() {
        let law = PayloadSpec::Cbr { rate: 10.0 }.interval_law().unwrap();
        let mut rng = MasterSeed::new(1).stream(0);
        for _ in 0..5 {
            assert_eq!(law.sample(&mut rng), 0.1);
        }
        assert_eq!(PayloadSpec::Cbr { rate: 10.0 }.rate(), 10.0);
    }

    #[test]
    fn poisson_interval_has_right_mean() {
        let law = PayloadSpec::Poisson { rate: 40.0 }.interval_law().unwrap();
        assert!((law.mean() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn bad_rates_error() {
        assert!(PayloadSpec::Cbr { rate: 0.0 }.interval_law().is_err());
        assert!(PayloadSpec::Cbr { rate: -3.0 }.interval_law().is_err());
        assert!(PayloadSpec::Poisson { rate: 0.0 }.interval_law().is_err());
    }

    #[test]
    fn schedule_specs_materialize() {
        let tau = 0.010;
        assert_eq!(ScheduleSpec::Cit.to_schedule(tau).unwrap().sigma_t(), 0.0);
        let v = ScheduleSpec::VitTruncatedNormal { sigma_t: 1e-3 }
            .to_schedule(tau)
            .unwrap();
        assert!((v.sigma_t() - 1e-3).abs() < 1e-9);
        assert!(ScheduleSpec::VitUniform { sigma_t: 2e-3 }
            .to_schedule(tau)
            .is_ok());
        assert!(ScheduleSpec::VitExponential.to_schedule(tau).is_ok());
    }

    #[test]
    fn sigma_t_reporting_matches_spec() {
        assert_eq!(ScheduleSpec::Cit.sigma_t(0.01), 0.0);
        assert_eq!(
            ScheduleSpec::VitTruncatedNormal { sigma_t: 5e-4 }.sigma_t(0.01),
            5e-4
        );
        assert_eq!(ScheduleSpec::VitExponential.sigma_t(0.01), 0.01);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ScheduleSpec::Cit.name(), "CIT");
        assert_eq!(
            ScheduleSpec::VitTruncatedNormal { sigma_t: 1e-3 }.name(),
            "VIT-tn"
        );
    }

    #[test]
    fn hop_constructors() {
        assert_eq!(HopSpec::quiet().utilization, 0.0);
        assert!(!HopSpec::poisson(0.3).bursty);
        assert!(HopSpec::bursty(0.3).bursty);
    }
}
