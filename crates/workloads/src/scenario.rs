//! The paper's experiment topologies as builders.
//!
//! * **lab** (Fig. 3): `source → GW1 → [tap] → ESR-5000-style router
//!   (shared with a cross-traffic workstation) → [tap] → GW2 → sink`.
//!   With the cross source off this is §5.1's zero-cross-traffic setup —
//!   the adversary's best case; with it on, it is the Fig. 6 sweep.
//! * **campus** (Fig. 7a): the same, but the padded flow traverses a
//!   3-router enterprise chain with light cross traffic at every hop and
//!   the adversary taps right in front of the receiver gateway.
//! * **wan** (Fig. 7b): a 15-router chain ("the path … spans over 15
//!   routers") with heavy cross traffic — the Ohio→Texas configuration.
//!
//! Every built scenario exposes two taps (sender egress and receiver
//! ingress) so experiments choose the adversary's vantage point, plus
//! gateway/receiver handles for QoS and overhead accounting.

use crate::aggregate::{AggregateSpec, PhaseSpec, SwitchingSpec};
use crate::cross::{cross_interval_law, cross_rate_for_utilization, SizeMix};
use crate::demux::FlowDemux;
use crate::spec::{HopSpec, PayloadModel, PayloadSpec, ScheduleSpec};
use crate::switching::RateLog;
use linkpad_core::calibration::CalibratedDefaults;
use linkpad_core::gateway::{
    GatewayHandle, ReceiverGateway, ReceiverHandle, SenderGateway, TimerDiscipline,
};
use linkpad_sim::engine::{BuildError, Sim, SimBuilder};
use linkpad_sim::fault::{FaultGateHandle, FaultPlan};
use linkpad_sim::observer::ObserverHandle;
use linkpad_sim::packet::{FlowId, PacketKind};
use linkpad_sim::router::Router;
use linkpad_sim::sink::{Sink, SinkHandle};
use linkpad_sim::source::DistSource;
use linkpad_sim::tap::{Tap, TapHandle};
use linkpad_sim::time::SimDuration;
use linkpad_stats::rng::MasterSeed;
use linkpad_stats::StatsError;

/// Where the adversary's analyzer is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapPosition {
    /// Right at the output of the sender gateway GW1 — minimum δ_net,
    /// the adversary's best case (paper §5.1).
    SenderEgress,
    /// Right in front of the receiver gateway GW2 — maximum accumulated
    /// δ_net (paper §5.3, campus/WAN).
    ReceiverIngress,
}

/// Errors from building or driving a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// Invalid statistical configuration.
    Stats(StatsError),
    /// Topology wiring failure.
    Build(BuildError),
    /// The tap did not accumulate enough packets within the run budget.
    CollectionStalled {
        /// Timestamps needed.
        needed: usize,
        /// Timestamps captured when the budget ran out.
        got: usize,
    },
    /// An aggregate scenario was configured with zero flows.
    EmptyAggregate,
    /// An aggregate cohort was configured with zero flows per cohort.
    EmptyCohort,
    /// A cohort was configured with a defense the one-node superposition
    /// cannot model (today: reactive adaptive padding, whose padding
    /// clock couples to per-member client traffic — see DESIGN.md).
    CohortUnsupported {
        /// Display name of the offending schedule spec.
        schedule: &'static str,
        /// Why cohort aggregation cannot model it.
        reason: &'static str,
    },
    /// An aggregate flow range lies outside the configured population.
    InvalidFlowRange {
        /// First global flow of the requested range.
        start: usize,
        /// Number of flows in the requested range.
        count: usize,
        /// Total flows in the aggregate.
        flows: usize,
    },
    /// A sharded run was configured with an unusable shard count or a
    /// builder the sharding layer cannot split (see
    /// [`crate::shard::ShardedAggregate::new`]).
    InvalidSharding(&'static str),
    /// A fault plan failed validation (see
    /// [`linkpad_sim::fault::FaultPlan::validate`]).
    InvalidFaultPlan(&'static str),
    /// A shard worker failed — it panicked on its first attempt *and*
    /// on the one fresh-rebuild retry the harness grants it (see
    /// [`crate::shard::ShardedAggregate`]). The cause carries the last
    /// panic payload.
    ShardFailed {
        /// Index of the failed shard.
        shard: usize,
        /// Human-readable cause (the worker's panic message).
        cause: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Stats(e) => write!(f, "scenario configuration: {e}"),
            ScenarioError::Build(e) => write!(f, "scenario wiring: {e}"),
            ScenarioError::CollectionStalled { needed, got } => {
                write!(f, "tap stalled: needed {needed} packets, got {got}")
            }
            ScenarioError::EmptyAggregate => {
                write!(f, "aggregate scenario needs at least one flow")
            }
            ScenarioError::EmptyCohort => {
                write!(f, "aggregate cohorts need at least one flow each")
            }
            ScenarioError::CohortUnsupported { schedule, reason } => {
                write!(
                    f,
                    "flow cohorts do not support the {schedule} schedule: {reason}"
                )
            }
            ScenarioError::InvalidFlowRange {
                start,
                count,
                flows,
            } => {
                write!(
                    f,
                    "aggregate flow range [{start}, {}) outside population of {flows}",
                    start + count
                )
            }
            ScenarioError::InvalidSharding(why) => {
                write!(f, "sharded aggregate misconfigured: {why}")
            }
            ScenarioError::InvalidFaultPlan(why) => {
                write!(f, "fault plan misconfigured: {why}")
            }
            ScenarioError::ShardFailed { shard, cause } => {
                write!(f, "shard {shard} failed after retry: {cause}")
            }
        }
    }
}
impl std::error::Error for ScenarioError {}

impl From<StatsError> for ScenarioError {
    fn from(e: StatsError) -> Self {
        ScenarioError::Stats(e)
    }
}
impl From<BuildError> for ScenarioError {
    fn from(e: BuildError) -> Self {
        ScenarioError::Build(e)
    }
}

/// Configurable scenario description. Cloneable; `build()` may be called
/// repeatedly (each call materializes fresh RNG streams from the seed).
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    /// Calibrated constants (τ, rates, packet size, link speed, jitter).
    pub defaults: CalibratedDefaults,
    seed: u64,
    payload: PayloadSpec,
    schedule: ScheduleSpec,
    payload_model: PayloadModel,
    hops: Vec<HopSpec>,
    size_mix: SizeMix,
    hop_propagation: f64,
    /// Capacity of the shared hop links (bits/s). Defaults to the
    /// calibrated lab value; campus/wan presets use faster links.
    hop_link_bps: f64,
    discipline: TimerDiscipline,
    /// When set, `build()` materializes the many-gateway aggregate
    /// topology instead of the single-pair hop chain.
    aggregate: Option<AggregateSpec>,
    /// How many worker sub-sims a [`crate::shard::ShardedAggregate`]
    /// splits this scenario's flow population across (1 = unsharded;
    /// plain `build()` ignores it).
    shards: usize,
    label: &'static str,
}

impl ScenarioBuilder {
    /// The laboratory topology (Fig. 3): one shared router, cross traffic
    /// off by default (§5.1 zero-cross case). Turn the cross source on
    /// with [`ScenarioBuilder::with_hops`] or
    /// [`ScenarioBuilder::with_uniform_utilization`].
    pub fn lab(seed: u64) -> Self {
        let defaults = CalibratedDefaults::paper();
        Self {
            defaults,
            seed,
            payload: PayloadSpec::Cbr {
                rate: defaults.rate_low,
            },
            schedule: ScheduleSpec::Cit,
            payload_model: PayloadModel::Fixed,
            hops: vec![HopSpec::quiet()],
            size_mix: SizeMix::InternetTrimodal,
            hop_propagation: 0.5e-3,
            hop_link_bps: defaults.link_bps,
            discipline: defaults.discipline,
            aggregate: None,
            shards: 1,
            label: "lab",
        }
    }

    /// The aggregate many-gateway topology (see [`crate::aggregate`]):
    /// `flows` independent padded gateway pairs sharing one trunk link,
    /// with a trunk tap on the aggregate and a per-flow demux behind it.
    /// Flow 0 keeps the lab scenario's instrumentation, so the usual tap
    /// positions and collectors work unchanged; the extra handles live
    /// in [`BuiltScenario::aggregate`].
    pub fn aggregate(seed: u64, flows: usize) -> Self {
        let mut s = Self::lab(seed);
        s.hops = Vec::new(); // the trunk replaces the hop chain
        s.aggregate = Some(AggregateSpec::new(flows));
        s.label = "aggregate";
        s
    }

    /// The campus topology (Fig. 7a): 3 routers on 600 Mb/s enterprise
    /// links with light cross traffic (fluid background model — see
    /// `crate::background`).
    pub fn campus(seed: u64, utilization: f64) -> Self {
        let mut s = Self::lab(seed);
        s.hops = vec![HopSpec::background(utilization); 3];
        s.hop_link_bps = 600e6;
        s.label = "campus";
        s
    }

    /// The WAN topology (Fig. 7b): 15 routers on ~1.3 Gb/s backbone
    /// links ("the path … spans over 15 routers"), heavy cross traffic
    /// (fluid background model).
    pub fn wan(seed: u64, utilization: f64) -> Self {
        let mut s = Self::lab(seed);
        s.hops = vec![HopSpec::background(utilization); 15];
        s.hop_link_bps = 1.3e9;
        s.label = "wan";
        s
    }

    /// Override the shared hop link capacity (bits/s).
    pub fn with_hop_link_bps(mut self, bps: f64) -> Self {
        self.hop_link_bps = bps;
        self
    }

    /// Override the aggregate trunk (capacity in bits/s, propagation in
    /// seconds). No effect outside the aggregate family.
    pub fn with_trunk(mut self, bps: f64, propagation_secs: f64) -> Self {
        if let Some(spec) = &mut self.aggregate {
            spec.trunk_bps = bps;
            spec.trunk_propagation = propagation_secs;
        }
        self
    }

    /// Replace the aggregate trunk's store-everything tap with a
    /// streaming windowed observer of the given window width (seconds):
    /// the aggregate-link adversary's instrument, folding arrivals into
    /// per-window count/byte-rate/PIAT-moment statistics in `O(windows)`
    /// memory. The handle lands in [`AggregateHandles::trunk_observer`];
    /// [`AggregateHandles::trunk_tap`] becomes `None`. No effect outside
    /// the aggregate family.
    pub fn with_trunk_observer(mut self, window_secs: f64) -> Self {
        if let Some(spec) = &mut self.aggregate {
            spec.observer_window = Some(window_secs);
        }
        self
    }

    /// Drive the aggregate target flow (flow 0) with a rate-switching
    /// payload source alternating between `rates[0]` and `rates[1]`
    /// (pps) every `dwell_secs` — the hidden state the aggregate-link
    /// adversary estimates. The ground-truth switch log lands in
    /// [`AggregateHandles::target_rate_log`]. No effect outside the
    /// aggregate family.
    pub fn with_switching_target(mut self, rates: [f64; 2], dwell_secs: f64) -> Self {
        if let Some(spec) = &mut self.aggregate {
            spec.switching = Some(SwitchingSpec { rates, dwell_secs });
        }
        self
    }

    /// Simulate the aggregate's non-target flows as
    /// [`FlowCohort`](linkpad_sim::cohort::FlowCohort)s of up to
    /// `cohort_size` flows each — one node and one pending timer per
    /// cohort instead of ~10 nodes per flow, the lever that takes the
    /// family to 10⁶ concurrent flows. Requires a schedule with
    /// stochastic-cohort support (build fails with
    /// [`ScenarioError::CohortUnsupported`] otherwise — today only
    /// reactive adaptive padding is excluded); QoS instrumentation then
    /// exists only for the target flow. No effect outside the aggregate
    /// family.
    pub fn with_cohorts(mut self, cohort_size: usize) -> Self {
        if let Some(spec) = &mut self.aggregate {
            spec.cohort_size = Some(cohort_size);
        }
        self
    }

    /// Padding-clock phase layout across the aggregate's flows (default
    /// [`PhaseSpec::Synchronized`], the one-τ-grid regime): the
    /// desynchronized-clock countermeasure comparison from the ROADMAP.
    /// No effect outside the aggregate family.
    pub fn with_phases(mut self, phases: PhaseSpec) -> Self {
        if let Some(spec) = &mut self.aggregate {
            spec.phases = phases;
        }
        self
    }

    /// Inject faults into the aggregate: trunk packet loss and/or
    /// scheduled outages (a [`linkpad_sim::fault::LossyGate`] is wired
    /// in front of the trunk) and observer measurement gaps (the trunk
    /// observer records nothing while its gap schedule is down and
    /// stamps per-window coverage fractions). The drop pattern is fully
    /// determined by `(plan.seed, run seed, topology)` — see the
    /// determinism contract in [`linkpad_sim::fault`]. A plan with no
    /// axes set wires nothing (the fault-free path adds zero nodes).
    /// No effect outside the aggregate family.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        if let Some(spec) = &mut self.aggregate {
            spec.faults = Some(plan);
        }
        self
    }

    /// Split this aggregate over `shards` worker sub-sims when executed
    /// through [`crate::shard::ShardedAggregate`] (plain `build()`
    /// ignores the setting). No effect outside the aggregate family.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Build only the global flow sub-population `[start, start+count)`
    /// — the per-worker view of a sharded run. The instrumented target
    /// exists only in the range containing flow 0; other ranges build
    /// observer-only shards. Exposed so shard workers (and tests) can
    /// materialize a single shard; most callers want
    /// [`crate::shard::ShardedAggregate`] instead. No effect outside
    /// the aggregate family.
    pub fn with_flow_range(mut self, start: usize, count: usize) -> Self {
        if let Some(spec) = &mut self.aggregate {
            spec.flow_range = Some((start, count));
        }
        self
    }

    /// Set the payload law (rate class ω).
    pub fn with_payload(mut self, payload: PayloadSpec) -> Self {
        self.payload = payload;
        self
    }

    /// Set CBR payload at `rate` pps (shorthand).
    pub fn with_payload_rate(self, rate: f64) -> Self {
        self.with_payload(PayloadSpec::Cbr { rate })
    }

    /// Set the padding schedule spec.
    pub fn with_schedule(mut self, schedule: ScheduleSpec) -> Self {
        self.schedule = schedule;
        self
    }

    /// Set the wire payload-size model (default [`PayloadModel::Fixed`],
    /// the calibrated constant packet size). Applies to every padded
    /// sender the builder materializes — the lab pair, aggregate
    /// per-flow gateways, and cohorts.
    pub fn with_payload_model(mut self, model: PayloadModel) -> Self {
        self.payload_model = model;
        self
    }

    /// Replace the hop list.
    pub fn with_hops(mut self, hops: Vec<HopSpec>) -> Self {
        self.hops = hops;
        self
    }

    /// Set every existing hop to the same Poisson utilization.
    pub fn with_uniform_utilization(mut self, utilization: f64) -> Self {
        for h in &mut self.hops {
            *h = HopSpec::poisson(utilization);
        }
        self
    }

    /// Cross-traffic packet-size mix.
    pub fn with_size_mix(mut self, mix: SizeMix) -> Self {
        self.size_mix = mix;
        self
    }

    /// Gateway timer discipline (ablation).
    pub fn with_discipline(mut self, discipline: TimerDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Override the calibrated defaults wholesale.
    pub fn with_defaults(mut self, defaults: CalibratedDefaults) -> Self {
        self.defaults = defaults;
        self
    }

    /// Use a different seed (e.g. per replication).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The payload spec currently configured.
    pub fn payload(&self) -> PayloadSpec {
        self.payload
    }

    /// The schedule spec currently configured.
    pub fn schedule(&self) -> ScheduleSpec {
        self.schedule
    }

    /// The payload-size model currently configured.
    pub fn payload_model(&self) -> PayloadModel {
        self.payload_model
    }

    /// Number of hops in the unprotected path.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The timer discipline currently configured.
    pub fn discipline(&self) -> TimerDiscipline {
        self.discipline
    }

    /// The master seed this builder materializes RNG streams from.
    ///
    /// Exposed so sweep harnesses can derive per-replication child seeds
    /// from the *configured* seed instead of hashing incidental builder
    /// state (which silently reseeded every experiment whenever the
    /// builder's `Debug` output changed).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Aggregate flow count (1 for the single-pair families).
    pub fn flow_count(&self) -> usize {
        self.aggregate.map_or(1, |a| a.flows)
    }

    /// The aggregate topology spec, when this is the aggregate family.
    pub fn aggregate_spec(&self) -> Option<AggregateSpec> {
        self.aggregate
    }

    /// Configured shard count (see [`ScenarioBuilder::with_shards`]).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Scenario family name ("lab" / "campus" / "wan" / "aggregate").
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Materialize the simulation.
    pub fn build(&self) -> Result<BuiltScenario, ScenarioError> {
        if let Some(spec) = self.aggregate {
            return crate::aggregate::build_aggregate(self, spec);
        }
        let d = self.defaults;
        let mut b = SimBuilder::new(MasterSeed::new(self.seed));

        // Downstream first: subnet-B sink ← GW2 ← receiver tap.
        let (payload_sink, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink.with_label("subnet-b")));
        let (receiver, gw2) = ReceiverGateway::new(Some(sink_id));
        let gw2_id = b.add_node(Box::new(gw2));
        let (receiver_tap, rtap) = Tap::on_padded_flow(Some(gw2_id));
        let rtap_id = b.add_node(Box::new(rtap.with_label("tap@gw2")));

        // The hop chain, built back to front.
        let mut next_for_padded = rtap_id;
        for (i, hop) in self.hops.iter().enumerate().rev() {
            if hop.background {
                let bg = crate::background::BackgroundNoiseHop::new(
                    next_for_padded,
                    self.hop_link_bps,
                    hop.utilization,
                    self.size_mix.mean_bytes(),
                    SimDuration::from_secs_f64(self.hop_propagation),
                )?;
                next_for_padded = b.add_node(Box::new(bg.with_label(format!("bg-hop-{i}"))));
                continue;
            }
            let (_cross_sink_handle, cross_sink) = Sink::new();
            let cross_sink_id = b.add_node(Box::new(cross_sink.with_label("subnet-d")));
            let demux_id = b.add_node(Box::new(FlowDemux::new(
                next_for_padded,
                Some(cross_sink_id),
            )));
            let router_id = b.add_node(Box::new(
                Router::new(
                    demux_id,
                    self.hop_link_bps,
                    SimDuration::from_secs_f64(self.hop_propagation),
                )
                .with_label(format!("router-{i}")),
            ));
            if hop.utilization > 0.0 {
                let rate = cross_rate_for_utilization(
                    hop.utilization,
                    self.hop_link_bps,
                    self.size_mix.mean_bytes(),
                )?;
                let interval = cross_interval_law(rate, hop.bursty)?;
                b.add_node(Box::new(
                    DistSource::new(
                        router_id,
                        FlowId::CROSS,
                        PacketKind::Cross,
                        interval,
                        Box::new(self.size_mix.law()?),
                    )
                    .with_label(format!("cross-{i}")),
                ));
            }
            next_for_padded = router_id;
        }

        // Sender side: GW1 ← sender tap wiring runs forward.
        let (sender_tap, stap) = Tap::on_padded_flow(Some(next_for_padded));
        let stap_id = b.add_node(Box::new(stap.with_label("tap@gw1")));
        let (gateway, gw1) = SenderGateway::new(
            stap_id,
            self.schedule.to_schedule(d.tau)?,
            d.jitter,
            d.packet_size,
        );
        let mut gw1 = gw1.with_discipline(self.discipline);
        if let Some(law) = self.payload_model.size_law(d.packet_size)? {
            gw1 = gw1.with_packet_size_law(law);
        }
        let gw1_id = b.add_node(Box::new(gw1));
        b.add_node(Box::new(DistSource::new(
            gw1_id,
            FlowId::PADDED,
            PacketKind::Payload,
            self.payload.interval_law()?,
            Box::new(linkpad_stats::dist::Deterministic::new(
                d.packet_size as f64,
            )?),
        )));

        let sim = b.build()?;
        Ok(BuiltScenario {
            sim,
            sender_tap,
            receiver_tap,
            gateway,
            receiver,
            payload_sink,
            aggregate: None,
            tau: d.tau,
        })
    }
}

/// Extra instrumentation of an aggregate scenario (one entry per flow,
/// indexed by flow id; flow 0 is also exposed through the plain
/// [`BuiltScenario`] handles).
pub struct AggregateHandles {
    /// Tap on the shared trunk, recording **all** flows — the
    /// aggregate-link adversary's raw view. `None` when the builder
    /// selected the streaming observer instead
    /// ([`ScenarioBuilder::with_trunk_observer`]).
    pub trunk_tap: Option<TapHandle>,
    /// Streaming windowed observer on the shared trunk — the
    /// aggregate-link adversary's `O(windows)` view. `None` unless
    /// [`ScenarioBuilder::with_trunk_observer`] was used.
    pub trunk_observer: Option<ObserverHandle>,
    /// Ground-truth rate-switch log of the target flow. `None` unless
    /// [`ScenarioBuilder::with_switching_target`] was used.
    pub target_rate_log: Option<RateLog>,
    /// Per-flow sender-gateway instrumentation. In cohort mode only the
    /// target flow has a real gateway, so this holds at most one entry.
    pub gateways: Vec<GatewayHandle>,
    /// Per-flow receiver-gateway instrumentation (target only in cohort
    /// mode).
    pub receivers: Vec<ReceiverHandle>,
    /// Per-cohort instrumentation (empty unless
    /// [`ScenarioBuilder::with_cohorts`] was used).
    pub cohorts: Vec<linkpad_sim::cohort::CohortHandle>,
    /// Drop counters of the trunk fault gate. `None` unless
    /// [`ScenarioBuilder::with_faults`] configured trunk loss or
    /// outages (observer-gap-only plans add no gate).
    pub fault_gate: Option<FaultGateHandle>,
}

/// A runnable scenario with its instrumentation handles.
pub struct BuiltScenario {
    /// The underlying simulation (own it to run it).
    pub sim: Sim,
    /// Tap at GW1's egress.
    pub sender_tap: TapHandle,
    /// Tap in front of GW2.
    pub receiver_tap: TapHandle,
    /// GW1 instrumentation.
    pub gateway: GatewayHandle,
    /// GW2 instrumentation.
    pub receiver: ReceiverHandle,
    /// Final payload sink in subnet B.
    pub payload_sink: SinkHandle,
    /// Aggregate-family extras (`None` for lab/campus/wan).
    pub aggregate: Option<AggregateHandles>,
    pub(crate) tau: f64,
}

impl BuiltScenario {
    /// The tap at a position.
    pub fn tap(&self, at: TapPosition) -> &TapHandle {
        match at {
            TapPosition::SenderEgress => &self.sender_tap,
            TapPosition::ReceiverIngress => &self.receiver_tap,
        }
    }

    /// Run for `secs` of simulated time.
    pub fn run_for_secs(&mut self, secs: f64) {
        self.sim.run_for(SimDuration::from_secs_f64(secs));
    }

    /// Rewind the scenario to its as-built state under a new seed,
    /// reusing the whole topology — nodes, event-store allocations,
    /// tap capture buffers. The contract (guarded by
    /// `tests/reset_determinism.rs`) is that `reset(s)` followed by any
    /// run is **bit-identical** to `builder.with_seed(s).build()`
    /// followed by the same run: every node drops its runtime and
    /// instrumentation state, and every RNG stream is re-derived from
    /// `(s, node index)`. Configuration (topology, schedules, rates) is
    /// construction-time state and is reused, not re-randomized.
    ///
    /// This is the sweep fast path: replications differ only by seed,
    /// so rebuilding the topology per replication is pure overhead.
    pub fn reset(&mut self, seed: u64) {
        self.sim.reset(MasterSeed::new(seed));
    }

    /// Drive the simulation until the tap at `at` has captured
    /// `warmup + count + 1` packets, then return `count` PIATs with the
    /// first `warmup` discarded (boot transient: queue fill, first
    /// payload phase-in).
    ///
    /// Fails with [`ScenarioError::CollectionStalled`] if the tap stops
    /// filling (wiring bug or stopped sources) rather than spinning
    /// forever.
    pub fn collect_piats(
        &mut self,
        at: TapPosition,
        count: usize,
        warmup: usize,
    ) -> Result<Vec<f64>, ScenarioError> {
        let mut out = Vec::new();
        self.collect_piats_into(at, count, warmup, &mut out)?;
        Ok(out)
    }

    /// [`BuiltScenario::collect_piats`] appending into a caller-provided
    /// buffer, so sweep loops can reuse one allocation across samples.
    pub fn collect_piats_into(
        &mut self,
        at: TapPosition,
        count: usize,
        warmup: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), ScenarioError> {
        let needed = warmup + count + 1;
        // Pre-size the tap's capture buffer for the whole collection so
        // the hot path never reallocates mid-run.
        self.tap(at)
            .reserve(needed.saturating_sub(self.tap(at).count()));
        let mut idle_rounds = 0;
        while self.tap(at).count() < needed {
            let missing = needed - self.tap(at).count();
            let before = self.tap(at).count();
            // Expected time for the missing packets, padded 25%.
            let span = (missing as f64 * self.tau * 1.25).max(self.tau * 16.0);
            self.sim.run_for(SimDuration::from_secs_f64(span));
            if self.tap(at).count() == before {
                idle_rounds += 1;
                if idle_rounds >= 3 {
                    return Err(ScenarioError::CollectionStalled {
                        needed,
                        got: self.tap(at).count(),
                    });
                }
            } else {
                idle_rounds = 0;
            }
        }
        let filled = self.tap(at).piats_window_into(warmup, count, out);
        debug_assert!(filled, "collection loop guaranteed enough packets");
        Ok(())
    }

    /// Reset to `seed` and collect — one replication of a sweep, reusing
    /// the built topology (see [`BuiltScenario::reset`]). Equivalent to
    /// `piats_for(&builder.with_seed(seed), ..)` without the rebuild.
    pub fn collect_piats_reseeded(
        &mut self,
        seed: u64,
        at: TapPosition,
        count: usize,
        warmup: usize,
    ) -> Result<Vec<f64>, ScenarioError> {
        self.reset(seed);
        self.collect_piats(at, count, warmup)
    }
}

/// Convenience used throughout benches and tests: build the scenario,
/// collect `count` PIATs at `at`, return them.
pub fn piats_for(
    builder: &ScenarioBuilder,
    at: TapPosition,
    count: usize,
    warmup: usize,
) -> Result<Vec<f64>, ScenarioError> {
    let mut s = builder.build()?;
    s.collect_piats(at, count, warmup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_stats::moments::{sample_mean, sample_variance};

    #[test]
    fn lab_zero_cross_piats_center_on_tau() {
        let piats = piats_for(
            &ScenarioBuilder::lab(1).with_payload_rate(10.0),
            TapPosition::SenderEgress,
            2000,
            50,
        )
        .unwrap();
        assert_eq!(piats.len(), 2000);
        let m = sample_mean(&piats).unwrap();
        assert!((m - 0.010).abs() < 1e-6, "mean {m}");
        // Jitter is µs-scale.
        let sd = sample_variance(&piats).unwrap().sqrt();
        assert!(sd > 1e-6 && sd < 50e-6, "sd {sd}");
    }

    #[test]
    fn lab_r_ratio_is_in_papers_band_at_sender() {
        let var_at = |seed, rate| {
            sample_variance(
                &piats_for(
                    &ScenarioBuilder::lab(seed).with_payload_rate(rate),
                    TapPosition::SenderEgress,
                    6000,
                    50,
                )
                .unwrap(),
            )
            .unwrap()
        };
        let r = var_at(2, 40.0) / var_at(3, 10.0);
        assert!(r > 1.15 && r < 1.7, "r = {r}");
    }

    #[test]
    fn cross_traffic_inflates_receiver_side_variance() {
        let var_with_util = |seed, util| {
            let b = ScenarioBuilder::lab(seed)
                .with_payload_rate(10.0)
                .with_uniform_utilization(util);
            sample_variance(&piats_for(&b, TapPosition::ReceiverIngress, 3000, 50).unwrap())
                .unwrap()
        };
        let quiet = var_with_util(4, 0.0);
        let busy = var_with_util(5, 0.4);
        assert!(
            busy > 3.0 * quiet,
            "σ_net missing: quiet={quiet:e} busy={busy:e}"
        );
    }

    #[test]
    fn wan_chain_accumulates_more_noise_than_campus() {
        let var_for = |b: &ScenarioBuilder| {
            sample_variance(&piats_for(b, TapPosition::ReceiverIngress, 2000, 50).unwrap()).unwrap()
        };
        let campus = var_for(&ScenarioBuilder::campus(6, 0.10).with_payload_rate(10.0));
        let wan = var_for(&ScenarioBuilder::wan(7, 0.40).with_payload_rate(10.0));
        assert!(
            wan > campus * 2.0,
            "wan {wan:e} should dwarf campus {campus:e}"
        );
    }

    #[test]
    fn receiver_gets_all_payload() {
        let b = ScenarioBuilder::lab(8).with_payload_rate(40.0);
        let mut s = b.build().unwrap();
        s.run_for_secs(30.0);
        // 40 pps × 30 s = 1200 payload packets, minus at most a couple in
        // flight.
        let delivered = s.receiver.payload_delivered();
        assert!(
            (1195..=1200).contains(&delivered),
            "delivered = {delivered}"
        );
        assert_eq!(s.receiver.unexpected(), 0);
        // Subnet-B sink saw exactly the delivered payload.
        assert_eq!(s.payload_sink.count() as u64, delivered);
    }

    #[test]
    fn taps_never_see_cross_traffic() {
        let b = ScenarioBuilder::lab(9)
            .with_payload_rate(10.0)
            .with_uniform_utilization(0.45);
        let mut s = b.build().unwrap();
        s.run_for_secs(20.0);
        let (_, _, cross_at_sender) = s.sender_tap.kind_counts();
        let (_, _, cross_at_receiver) = s.receiver_tap.kind_counts();
        assert_eq!(cross_at_sender, 0);
        assert_eq!(cross_at_receiver, 0);
        assert!(s.receiver_tap.count() > 1500);
    }

    #[test]
    fn collect_piats_discards_warmup() {
        let b = ScenarioBuilder::lab(10).with_payload_rate(10.0);
        let mut s = b.build().unwrap();
        let piats = s.collect_piats(TapPosition::SenderEgress, 100, 10).unwrap();
        assert_eq!(piats.len(), 100);
        // All sane values near τ.
        assert!(piats.iter().all(|&x| x > 0.005 && x < 0.015));
    }

    #[test]
    fn builder_accessors_report_configuration() {
        let b = ScenarioBuilder::wan(11, 0.3)
            .with_payload(PayloadSpec::Poisson { rate: 40.0 })
            .with_schedule(ScheduleSpec::VitTruncatedNormal { sigma_t: 1e-3 });
        assert_eq!(b.hop_count(), 15);
        assert_eq!(b.label(), "wan");
        assert_eq!(b.payload().rate(), 40.0);
        assert_eq!(b.schedule().sigma_t(0.010), 1e-3);
    }

    #[test]
    fn invalid_configuration_errors_cleanly() {
        let b = ScenarioBuilder::lab(12).with_payload_rate(-5.0);
        assert!(matches!(b.build(), Err(ScenarioError::Stats(_))));
        let b = ScenarioBuilder::lab(13).with_uniform_utilization(1.5);
        assert!(b.build().is_err());
    }
}
