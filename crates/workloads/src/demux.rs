//! Flow demultiplexer: after a shared egress link, padded traffic
//! continues toward GW2 while cross traffic peels off toward its own
//! subnet (Fig. 3: the ESR-5000's outgoing link fans out to Subnet B's
//! gateway and to Subnet D's cross-traffic receiver).

use linkpad_sim::engine::Context;
use linkpad_sim::node::{Node, NodeId};
use linkpad_sim::packet::Packet;

/// Routes packets by flow: padded flow → `padded_next`, everything else
/// → `other_next` (dropped when `None`).
#[derive(Debug)]
pub struct FlowDemux {
    padded_next: NodeId,
    other_next: Option<NodeId>,
    padded_count: u64,
    other_count: u64,
}

impl FlowDemux {
    /// Create a demux.
    pub fn new(padded_next: NodeId, other_next: Option<NodeId>) -> Self {
        Self {
            padded_next,
            other_next,
            padded_count: 0,
            other_count: 0,
        }
    }

    /// Packets forwarded along the padded path.
    pub fn padded_count(&self) -> u64 {
        self.padded_count
    }

    /// Packets routed off-path (or dropped).
    pub fn other_count(&self) -> u64 {
        self.other_count
    }
}

impl Node for FlowDemux {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if packet.is_padded_flow() {
            self.padded_count += 1;
            ctx.send_now(self.padded_next, packet);
        } else {
            self.other_count += 1;
            if let Some(next) = self.other_next {
                ctx.send_now(next, packet);
            }
        }
    }

    fn reset(&mut self) {
        self.padded_count = 0;
        self.other_count = 0;
    }

    fn label(&self) -> &str {
        "demux"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_sim::engine::SimBuilder;
    use linkpad_sim::packet::{FlowId, PacketKind};
    use linkpad_sim::sink::Sink;
    use linkpad_sim::source::DistSource;
    use linkpad_sim::time::SimTime;
    use linkpad_stats::dist::Deterministic;
    use linkpad_stats::rng::MasterSeed;

    #[test]
    fn demux_splits_flows() {
        let mut b = SimBuilder::new(MasterSeed::new(1));
        let (padded_handle, padded_sink) = Sink::new();
        let padded_id = b.add_node(Box::new(padded_sink));
        let (cross_handle, cross_sink) = Sink::new();
        let cross_id = b.add_node(Box::new(cross_sink));
        let demux = b.add_node(Box::new(FlowDemux::new(padded_id, Some(cross_id))));
        for (flow, kind, period) in [
            (FlowId::PADDED, PacketKind::Dummy, 0.010),
            (FlowId::CROSS, PacketKind::Cross, 0.004),
        ] {
            b.add_node(Box::new(DistSource::new(
                demux,
                flow,
                kind,
                Box::new(Deterministic::new(period).unwrap()),
                Box::new(Deterministic::new(500.0).unwrap()),
            )));
        }
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(padded_handle.count(), 100);
        assert_eq!(cross_handle.count(), 250);
        assert_eq!(padded_handle.count_kind(PacketKind::Cross), 0);
        assert_eq!(cross_handle.count_kind(PacketKind::Dummy), 0);
    }

    #[test]
    fn cross_traffic_can_be_dropped() {
        let mut b = SimBuilder::new(MasterSeed::new(2));
        let (padded_handle, padded_sink) = Sink::new();
        let padded_id = b.add_node(Box::new(padded_sink));
        let demux = b.add_node(Box::new(FlowDemux::new(padded_id, None)));
        b.add_node(Box::new(DistSource::new(
            demux,
            FlowId::CROSS,
            PacketKind::Cross,
            Box::new(Deterministic::new(0.01).unwrap()),
            Box::new(Deterministic::new(100.0).unwrap()),
        )));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(0.5));
        assert_eq!(padded_handle.count(), 0); // nothing leaked across
    }
}
