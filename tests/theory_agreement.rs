//! The closed-form theorems must track the empirical pipeline: this is
//! the paper's central validation claim ("experimental data well matches
//! the performance predicted by our approximation formulae").

use linkpad::adversary::pipeline::DetectionStudy;
use linkpad::analytic::ratio::empirical_r;
use linkpad::prelude::*;
use linkpad::stats::moments::sample_variance;

/// Empirical detection + measured r for one (feature, n).
fn empirical(feature: &dyn Feature, n: usize, seeds: (u64, u64)) -> (f64, f64) {
    let study = DetectionStudy {
        sample_size: n,
        train_samples: 50,
        test_samples: 40,
    };
    let low = ScenarioBuilder::lab(seeds.0).with_payload_rate(10.0);
    let high = ScenarioBuilder::lab(seeds.1).with_payload_rate(40.0);
    let pl = piats_for(&low, TapPosition::SenderEgress, study.piats_needed(), 64).unwrap();
    let ph = piats_for(&high, TapPosition::SenderEgress, study.piats_needed(), 64).unwrap();
    let r = empirical_r(sample_variance(&pl).unwrap(), sample_variance(&ph).unwrap()).unwrap();
    let v = study.run(feature, &[pl, ph]).unwrap().detection_rate();
    (v, r)
}

#[test]
fn variance_feature_tracks_theorem_2() {
    for (n, seeds) in [(300usize, (31, 32)), (900, (33, 34))] {
        let (emp, r) = empirical(&SampleVariance, n, seeds);
        let theory = detection_rate_variance(r, n).unwrap();
        assert!(
            (emp - theory).abs() < 0.15,
            "n={n}: empirical {emp:.3} vs theorem2 {theory:.3} at r={r:.3}"
        );
    }
}

#[test]
fn entropy_feature_tracks_theorem_3() {
    for (n, seeds) in [(300usize, (35, 36)), (900, (37, 38))] {
        let (emp, r) = empirical(&SampleEntropy::calibrated(), n, seeds);
        let theory = detection_rate_entropy(r, n).unwrap();
        assert!(
            (emp - theory).abs() < 0.15,
            "n={n}: empirical {emp:.3} vs theorem3 {theory:.3} at r={r:.3}"
        );
    }
}

#[test]
fn mean_feature_tracks_theorem_1() {
    let (emp, r) = empirical(&SampleMean, 600, (39, 40));
    let theory = detection_rate_mean(r).unwrap();
    // Both should sit just above 0.5.
    assert!(
        (emp - theory).abs() < 0.12,
        "empirical {emp:.3} vs theorem1 {theory:.3} at r={r:.3}"
    );
    assert!(theory < 0.55);
}

#[test]
fn measured_r_matches_calibrated_prediction() {
    let (_, r) = empirical(&SampleMean, 400, (41, 42));
    let predicted = CalibratedDefaults::paper().predicted_r(0.0);
    assert!(
        (r - predicted).abs() / predicted < 0.15,
        "measured r = {r:.3}, predicted = {predicted:.3}"
    );
}

#[test]
fn exact_rates_bound_the_approximations_sanely() {
    use linkpad::analytic::exact;
    for &r in &[1.2, 1.5, 2.0] {
        for &n in &[100usize, 1000] {
            let approx = detection_rate_variance(r, n).unwrap();
            let exact_v = exact::variance_detection(r, n).unwrap();
            // Both in [0.5, 1]; the Chebyshev-style approximation may
            // undershoot the exact Bayes rate, but never by more than
            // the structural gap observed in the paper's Fig. 4(b).
            assert!((0.5..=1.0).contains(&approx));
            assert!((0.5..=1.0).contains(&exact_v));
            assert!(
                exact_v >= approx - 0.05,
                "exact {exact_v:.3} vs approx {approx:.3} at r={r}, n={n}"
            );
        }
    }
}
