//! End-to-end reproduction checks: the paper's headline results must
//! hold on the full pipeline (scenario → tap → features → KDE-Bayes →
//! detection rate).
//!
//! Budgets are kept small enough for debug-mode CI; the full-budget
//! numbers live in the benches (see DESIGN.md's per-figure index).

use linkpad::adversary::pipeline::DetectionStudy;
use linkpad::prelude::*;

fn study(n: usize) -> DetectionStudy {
    DetectionStudy {
        sample_size: n,
        train_samples: 40,
        test_samples: 30,
    }
}

fn run(
    schedule: ScheduleSpec,
    n: usize,
    feature: &dyn Feature,
    at: TapPosition,
    seeds: (u64, u64),
) -> f64 {
    let s = study(n);
    let low = ScenarioBuilder::lab(seeds.0)
        .with_payload_rate(10.0)
        .with_schedule(schedule);
    let high = ScenarioBuilder::lab(seeds.1)
        .with_payload_rate(40.0)
        .with_schedule(schedule);
    let piats_low = piats_for(&low, at, s.piats_needed(), 64).unwrap();
    let piats_high = piats_for(&high, at, s.piats_needed(), 64).unwrap();
    s.run(feature, &[piats_low, piats_high])
        .unwrap()
        .detection_rate()
}

#[test]
fn cit_is_broken_by_variance_and_entropy_at_n_1000() {
    let v = run(
        ScheduleSpec::Cit,
        1000,
        &SampleVariance,
        TapPosition::SenderEgress,
        (1, 2),
    );
    assert!(v > 0.85, "variance attack on CIT: v = {v}");
    let e = run(
        ScheduleSpec::Cit,
        1000,
        &SampleEntropy::calibrated(),
        TapPosition::SenderEgress,
        (3, 4),
    );
    assert!(e > 0.85, "entropy attack on CIT: v = {e}");
}

#[test]
fn cit_is_not_broken_by_sample_mean() {
    let m = run(
        ScheduleSpec::Cit,
        1000,
        &SampleMean,
        TapPosition::SenderEgress,
        (5, 6),
    );
    assert!(m < 0.68, "sample mean must hover near chance: v = {m}");
}

#[test]
fn vit_at_one_ms_blinds_the_adversary() {
    let schedule = ScheduleSpec::VitTruncatedNormal { sigma_t: 1e-3 };
    let v = run(
        schedule,
        1500,
        &SampleVariance,
        TapPosition::SenderEgress,
        (7, 8),
    );
    assert!(v < 0.62, "variance attack on VIT(1ms): v = {v}");
    let e = run(
        schedule,
        1500,
        &SampleEntropy::calibrated(),
        TapPosition::SenderEgress,
        (9, 10),
    );
    assert!(e < 0.62, "entropy attack on VIT(1ms): v = {e}");
}

#[test]
fn detection_grows_with_sample_size_under_cit() {
    let small = run(
        ScheduleSpec::Cit,
        100,
        &SampleVariance,
        TapPosition::SenderEgress,
        (11, 12),
    );
    let large = run(
        ScheduleSpec::Cit,
        1200,
        &SampleVariance,
        TapPosition::SenderEgress,
        (13, 14),
    );
    assert!(
        large > small + 0.05,
        "n=100 → {small}, n=1200 → {large}: theorem 2 monotonicity violated"
    );
    assert!(large > 0.9);
}

#[test]
fn cross_traffic_degrades_the_attack() {
    let quiet = {
        let s = study(800);
        let low = ScenarioBuilder::lab(15).with_payload_rate(10.0);
        let high = ScenarioBuilder::lab(16).with_payload_rate(40.0);
        let pl = piats_for(&low, TapPosition::ReceiverIngress, s.piats_needed(), 64).unwrap();
        let ph = piats_for(&high, TapPosition::ReceiverIngress, s.piats_needed(), 64).unwrap();
        s.run(&SampleEntropy::calibrated(), &[pl, ph])
            .unwrap()
            .detection_rate()
    };
    let busy = {
        let s = study(800);
        let low = ScenarioBuilder::lab(17)
            .with_payload_rate(10.0)
            .with_uniform_utilization(0.45);
        let high = ScenarioBuilder::lab(18)
            .with_payload_rate(40.0)
            .with_uniform_utilization(0.45);
        let pl = piats_for(&low, TapPosition::ReceiverIngress, s.piats_needed(), 64).unwrap();
        let ph = piats_for(&high, TapPosition::ReceiverIngress, s.piats_needed(), 64).unwrap();
        s.run(&SampleEntropy::calibrated(), &[pl, ph])
            .unwrap()
            .detection_rate()
    };
    assert!(
        busy < quiet - 0.1,
        "utilization must hurt the adversary: quiet = {quiet}, busy = {busy}"
    );
}

#[test]
fn wan_hides_more_than_campus() {
    let rate_for = |mk: fn(u64, f64) -> ScenarioBuilder, util: f64, seeds: (u64, u64)| {
        let s = study(800);
        let low = mk(seeds.0, util).with_payload_rate(10.0);
        let high = mk(seeds.1, util).with_payload_rate(40.0);
        let pl = piats_for(&low, TapPosition::ReceiverIngress, s.piats_needed(), 64).unwrap();
        let ph = piats_for(&high, TapPosition::ReceiverIngress, s.piats_needed(), 64).unwrap();
        s.run(&SampleEntropy::calibrated(), &[pl, ph])
            .unwrap()
            .detection_rate()
    };
    let campus = rate_for(ScenarioBuilder::campus, 0.10, (19, 20));
    let wan = rate_for(ScenarioBuilder::wan, 0.45, (21, 22));
    assert!(
        campus > 0.8,
        "campus daytime should stay detectable: {campus}"
    );
    assert!(
        wan < campus - 0.15,
        "WAN must hide more: campus {campus}, wan {wan}"
    );
}
