//! The paper's §6 extension: more than two payload rates.
//!
//! "In this paper we discuss the simple case where two classes of
//! traffic rates should be distinguished. Our technique can be easily
//! extended to multiple ones by performing more off-line training."
//!
//! The classifier and pipeline are m-class by construction; this test
//! exercises three rates end to end.

use linkpad::adversary::pipeline::DetectionStudy;
use linkpad::prelude::*;

#[test]
fn three_rate_classification_beats_chance_and_orders_sanely() {
    let n = 1200;
    let study = DetectionStudy {
        sample_size: n,
        train_samples: 40,
        test_samples: 30,
    };
    let rates = [10.0, 25.0, 40.0];
    let mut streams = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        let b = ScenarioBuilder::lab(90 + i as u64).with_payload_rate(rate);
        streams.push(piats_for(&b, TapPosition::SenderEgress, study.piats_needed(), 64).unwrap());
    }
    let report = study.run(&SampleEntropy::calibrated(), &streams).unwrap();
    let v = report.detection_rate();
    // Chance for three equiprobable classes is 1/3. The middle class is
    // genuinely confusable with both neighbours (r ≈ 1.2 per pair), so
    // we demand "clearly informative", not "perfect".
    assert!(v > 0.55, "3-class detection rate = {v}");
    // The extreme classes must be easier than the middle one.
    let low = report.class_rate(0);
    let mid = report.class_rate(1);
    let high = report.class_rate(2);
    assert!(
        low >= mid || high >= mid,
        "middle rate should be hardest: {low:.2} / {mid:.2} / {high:.2}"
    );
    // Confusions should be overwhelmingly between adjacent rates — a
    // 10 pps sample mistaken for 40 pps (or vice versa) should be rare.
    // We can't see the full confusion matrix from DetectionReport's
    // per-class recall alone, so assert recall floors instead.
    assert!(low > 0.45 && high > 0.45, "{low:.2} / {high:.2}");
}

#[test]
fn three_class_bayes_threshold_is_undefined_but_classify_works() {
    use linkpad::adversary::classifier::KdeBayes;
    use linkpad::adversary::pipeline::features_from_piats;
    let n = 800;
    let per_class = 30 * n;
    let mut features = Vec::new();
    for (i, rate) in [10.0, 25.0, 40.0].iter().enumerate() {
        let b = ScenarioBuilder::lab(95 + i as u64).with_payload_rate(*rate);
        let piats = piats_for(&b, TapPosition::SenderEgress, per_class, 64).unwrap();
        features.push(features_from_piats(&SampleVariance, &piats, n).unwrap());
    }
    let classifier = KdeBayes::train(&features).unwrap();
    assert_eq!(classifier.class_count(), 3);
    assert!(classifier.two_class_threshold().is_none());
    // Class-typical features classify to themselves more often than not.
    let mut correct = 0;
    let mut total = 0;
    for (class, feats) in features.iter().enumerate() {
        for &s in feats.iter().take(10) {
            if classifier.classify(s) == class {
                correct += 1;
            }
            total += 1;
        }
    }
    assert!(
        correct as f64 / total as f64 > 0.5,
        "resubstitution accuracy {correct}/{total}"
    );
}
