//! Real-time testbed smoke tests (loose tolerances: CI clocks are noisy).

use linkpad::prelude::*;
use linkpad::stats::moments::sample_mean;

#[test]
fn live_cit_round_trip() {
    let report = run_live(LiveConfig {
        tau: 0.002,
        sigma_t: 0.0,
        payload_rate: 50.0,
        packet_size: 500,
        count: 200,
        seed: 1,
    })
    .unwrap();
    assert_eq!(report.frames(), 200);
    assert_eq!(report.decode_errors, 0);
    assert!(report.payload_received > 0);
    assert!(report.dummies_stripped > 0);
    let mean = sample_mean(&report.piats).unwrap();
    assert!(
        (mean - 0.002).abs() / 0.002 < 0.25,
        "live mean PIAT {mean} far from τ"
    );
}

#[test]
fn live_vit_intervals_follow_the_designed_law() {
    // A CIT baseline captured back-to-back controls for whatever ambient
    // jitter the host is suffering right now (CI boxes can be saturated,
    // inflating OS noise by orders of magnitude). The designed VIT
    // variance must show up *on top of* that baseline; no absolute upper
    // bound is assertable on a shared machine. σ_T is set well above the
    // worst ambient jitter observed on loaded single-core containers
    // (~350 µs) so the designed component dominates the noise floor.
    let sigma_t = 1e-3;
    // Trimmed variance: a single multi-millisecond scheduler stall in a
    // 250-packet capture (routine while the test harness still compiles
    // sibling crates) adds ~4e-7 to a plain variance estimate — the same
    // order as the effect under test. Dropping the extreme 2% of PIATs
    // on each side removes stall artifacts while keeping most of the
    // designed truncated-normal spread.
    let capture = |sigma_t: f64, seed: u64| {
        let report = run_live(LiveConfig {
            tau: 0.002,
            sigma_t,
            payload_rate: 0.0,
            packet_size: 500,
            count: 250,
            seed,
        })
        .unwrap();
        let mut piats = report.piats;
        piats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let trim = piats.len() / 50;
        linkpad::stats::moments::sample_variance(&piats[trim..piats.len() - trim]).unwrap()
    };
    let cit_var = capture(0.0, 1);
    let vit_var = capture(sigma_t, 2);
    let designed = sigma_t * sigma_t;
    assert!(
        vit_var > 0.3 * designed,
        "live VIT PIAT variance {vit_var:e} lost the designed component {designed:.1e}"
    );
    assert!(
        vit_var > cit_var + 0.25 * designed,
        "VIT must add ≥ ~σ_T² over the CIT baseline: cit {cit_var:e}, vit {vit_var:e}"
    );
}
