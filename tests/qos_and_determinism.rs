//! QoS guarantees, overhead accounting, determinism, and the
//! threat-model information barrier, exercised across crates.

use linkpad::core::overhead::OverheadReport;
use linkpad::prelude::*;

#[test]
fn padding_preserves_payload_delivery_and_bounds_delay() {
    let b = ScenarioBuilder::lab(51).with_payload_rate(40.0);
    let mut s = b.build().unwrap();
    s.run_for_secs(30.0);
    // All payload delivered (minus in-flight at the boundary).
    let delivered = s.receiver.payload_delivered();
    assert!(
        (1195..=1200).contains(&delivered),
        "delivered = {delivered}"
    );
    assert_eq!(s.receiver.unexpected(), 0);
    // Padding delay bound: a stable CIT queue holds payload at most ~τ.
    let e2e = s.receiver.end_to_end_delay_moments();
    assert!(
        e2e.max() < 0.025,
        "end-to-end payload delay {}s exceeds the CIT bound",
        e2e.max()
    );
    // Overhead is exactly the rate deficit: 40 pps payload on a 100 pps
    // clock → 60% dummies.
    let report = OverheadReport::from_handles(&s.gateway, Some(&s.receiver));
    assert!((report.dummy_fraction - 0.6).abs() < 0.02);
    assert!(report.payload_dropped == 0);
}

#[test]
fn same_seed_same_capture_different_seed_different_capture() {
    let piats = |seed: u64| {
        piats_for(
            &ScenarioBuilder::lab(seed).with_payload_rate(40.0),
            TapPosition::SenderEgress,
            2_000,
            10,
        )
        .unwrap()
    };
    let a = piats(42);
    let b = piats(42);
    let c = piats(43);
    assert_eq!(a, b, "same seed must be bit-identical");
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn determinism_holds_through_the_full_attack() {
    use linkpad::adversary::pipeline::DetectionStudy;
    let run_once = || {
        let study = DetectionStudy {
            sample_size: 400,
            train_samples: 20,
            test_samples: 15,
        };
        let low = ScenarioBuilder::lab(61).with_payload_rate(10.0);
        let high = ScenarioBuilder::lab(62).with_payload_rate(40.0);
        let pl = piats_for(&low, TapPosition::SenderEgress, study.piats_needed(), 64).unwrap();
        let ph = piats_for(&high, TapPosition::SenderEgress, study.piats_needed(), 64).unwrap();
        study
            .run(&SampleVariance, &[pl, ph])
            .unwrap()
            .detection_rate()
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn adversary_sees_only_timestamps() {
    // The tap's adversary-facing API yields timestamps; kind counts are a
    // separate instrumentation channel. This is a compile-time-ish
    // property, but assert the runtime shape too: PIATs carry no side
    // information (all values are plain positive seconds).
    let piats = piats_for(
        &ScenarioBuilder::lab(63).with_payload_rate(40.0),
        TapPosition::SenderEgress,
        1_000,
        10,
    )
    .unwrap();
    assert!(piats.iter().all(|&x| x.is_finite() && x > 0.0));
}

#[test]
fn parallel_sweep_equals_sequential_run() {
    use linkpad::sim::parallel::parallel_map_with_threads;
    let configs: Vec<u64> = (0..8).collect();
    let job = |seed: u64| {
        piats_for(
            &ScenarioBuilder::lab(seed).with_payload_rate(10.0),
            TapPosition::SenderEgress,
            500,
            10,
        )
        .unwrap()
        .iter()
        .sum::<f64>()
    };
    let par = parallel_map_with_threads(configs.clone(), 4, job);
    let seq: Vec<f64> = configs.into_iter().map(job).collect();
    assert_eq!(par, seq, "thread count must not affect results");
}

#[test]
fn switching_source_ground_truth_is_queryable() {
    use linkpad::sim::engine::SimBuilder;
    use linkpad::sim::sink::Sink;
    use linkpad::workloads::switching::SwitchingSource;
    let mut b = SimBuilder::new(MasterSeed::new(77));
    let (_h, sink) = Sink::new();
    let sink_id = b.add_node(Box::new(sink));
    let (log, src) =
        SwitchingSource::new(sink_id, [10.0, 40.0], SimDuration::from_secs_f64(3.0), 500);
    b.add_node(Box::new(src));
    let mut sim = b.build().unwrap();
    sim.run_until(SimTime::from_secs_f64(10.0));
    assert_eq!(log.rate_at(SimTime::from_secs_f64(1.0)), Some(10.0));
    assert_eq!(log.rate_at(SimTime::from_secs_f64(4.0)), Some(40.0));
    assert_eq!(log.entries().len(), 4); // 0s, 3s, 6s, 9s
}
