//! Quickstart: mount the paper's laboratory attack against CIT padding
//! and check it against the closed-form theory, in ~40 lines of API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use linkpad::prelude::*;

fn main() {
    // 1. The system under test: the ICPP'03 lab (Fig. 3) with CIT
    //    padding at τ = 10 ms, payload hidden at 10 pps or 40 pps.
    let low = ScenarioBuilder::lab(1).with_payload_rate(10.0);
    let high = ScenarioBuilder::lab(2).with_payload_rate(40.0);

    // 2. The adversary's capture: PIATs at the sender gateway's egress
    //    (their best case — no cross-traffic noise yet).
    let n = 1000; // PIATs per classified sample
    let study = DetectionStudy {
        sample_size: n,
        train_samples: 60,
        test_samples: 40,
    };
    let needed = study.piats_needed();
    println!("collecting 2 × {needed} packet inter-arrival times…");
    let piats_low = piats_for(&low, TapPosition::SenderEgress, needed, 64).unwrap();
    let piats_high = piats_for(&high, TapPosition::SenderEgress, needed, 64).unwrap();

    // 3. Attack with each of the paper's three features.
    println!("\nCIT padding, n = {n}:");
    let features: Vec<(&str, Box<dyn Feature>)> = vec![
        ("sample mean   ", Box::new(SampleMean)),
        ("sample variance", Box::new(SampleVariance)),
        ("sample entropy ", Box::new(SampleEntropy::calibrated())),
    ];
    let mut rates = Vec::new();
    for (name, feature) in &features {
        let report = study
            .run(feature.as_ref(), &[piats_low.clone(), piats_high.clone()])
            .unwrap();
        let (lo, hi) = report.wilson_interval(0.05);
        println!(
            "  {name}  detection = {:.3}  (95% CI {:.3}–{:.3})",
            report.detection_rate(),
            lo,
            hi
        );
        rates.push(report.detection_rate());
    }

    // 4. Compare against Theorems 1–3 at the calibrated r.
    let r = CalibratedDefaults::paper().predicted_r(0.0);
    println!("\ntheory at r = {r:.3}:");
    println!(
        "  sample mean     v = {:.3}",
        detection_rate_mean(r).unwrap()
    );
    println!(
        "  sample variance v = {:.3}",
        detection_rate_variance(r, n).unwrap()
    );
    println!(
        "  sample entropy  v = {:.3}",
        detection_rate_entropy(r, n).unwrap()
    );

    println!(
        "\nconclusion: CIT leaks the payload rate through second-order PIAT \
         statistics (variance/entropy ≈ 1.0) while the mean stays blind — \
         exactly the paper's Fig. 4(b)."
    );
}
