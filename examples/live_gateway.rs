//! Run the padding system on *real* OS timers and threads — the
//! `linkpad-testbed` substitute for the paper's TimeSys Linux gateways —
//! and attack the captured timing with the same adversary pipeline.
//!
//! ```sh
//! cargo run --release --example live_gateway
//! ```

use linkpad::adversary::pipeline::DetectionStudy;
use linkpad::prelude::*;
use linkpad::stats::moments::{sample_mean, sample_variance};

fn capture(sigma_t: f64, payload_rate: f64, count: usize, seed: u64) -> Vec<f64> {
    let report = run_live(LiveConfig {
        tau: 0.003, // 3 ms timer keeps the demo under a minute
        sigma_t,
        payload_rate,
        packet_size: 500,
        count,
        seed,
    })
    .expect("live run failed");
    assert_eq!(report.decode_errors, 0, "wire format must round-trip");
    report.piats
}

fn main() {
    let n = 200;
    let study = DetectionStudy {
        sample_size: n,
        train_samples: 12,
        test_samples: 8,
    };
    let needed = study.piats_needed() + 1;

    println!("live CIT capture (3 ms timer, real threads)…");
    let cit_low = capture(0.0, 30.0, needed, 1);
    let cit_high = capture(0.0, 140.0, needed, 2);
    println!(
        "  low-rate : mean PIAT {:.3} ms, std {:.1} µs",
        sample_mean(&cit_low).unwrap() * 1e3,
        sample_variance(&cit_low).unwrap().sqrt() * 1e6
    );
    println!(
        "  high-rate: mean PIAT {:.3} ms, std {:.1} µs",
        sample_mean(&cit_high).unwrap() * 1e3,
        sample_variance(&cit_high).unwrap().sqrt() * 1e6
    );
    let report = study
        .run(
            &SampleEntropy::with_bin_width(20e-6).unwrap(),
            &[cit_low, cit_high],
        )
        .unwrap();
    println!(
        "  entropy-feature detection on REAL jitter: {:.3}",
        report.detection_rate()
    );
    println!(
        "  (in-process channels have no NIC, so the payload→timer coupling\n   is whatever this host's scheduler exhibits — often weaker than the\n   paper's hardware; the interesting part is the pipeline runs unchanged)"
    );

    println!("\nlive VIT capture (sigma_T = 300 µs)…");
    let vit_low = capture(300e-6, 30.0, needed, 3);
    let vit_high = capture(300e-6, 140.0, needed, 4);
    let report = study
        .run(
            &SampleEntropy::with_bin_width(20e-6).unwrap(),
            &[vit_low, vit_high],
        )
        .unwrap();
    println!(
        "  entropy-feature detection against VIT: {:.3}  (≈ 0.5 = blind)",
        report.detection_rate()
    );
}
