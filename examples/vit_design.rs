//! Design a VIT padding configuration to a detection-rate budget, then
//! verify the recommendation by simulation and account for its QoS cost.
//!
//! This is the paper's §6 guidance turned into a procedure:
//! 1. measure the gateway's rate-dependent jitter (the leak),
//! 2. pick σ_T so the attack needs an infeasible sample,
//! 3. confirm empirically, 4. check what padding costs the payload.
//!
//! ```sh
//! cargo run --release --example vit_design
//! ```

use linkpad::adversary::pipeline::DetectionStudy;
use linkpad::core::overhead::OverheadReport;
use linkpad::prelude::*;

fn main() {
    let defaults = CalibratedDefaults::paper();

    // 1. The gateway's on-the-wire variances (2·Var(δ_gw), absolute timer).
    let gw_low = 2.0 * defaults.sigma_gw_sq(defaults.rate_low);
    let gw_high = 2.0 * defaults.sigma_gw_sq(defaults.rate_high);
    println!(
        "gateway wire variances: low = {:.1} µs², high = {:.1} µs²  (r = {:.3})",
        gw_low * 1e12,
        gw_high * 1e12,
        gw_high / gw_low
    );

    // 2. Design: adversary can gather 10⁶ PIATs; detection must stay ≤ 55%.
    let input = DesignInput::conservative(gw_low, gw_high);
    let exposure = input.cit_exposure().unwrap();
    println!(
        "\nif we keep CIT:   variance attack v = {:.3}, entropy v = {:.3}  — compromised",
        exposure.variance_rate, exposure.entropy_rate
    );
    let rec = input.recommend().unwrap();
    println!(
        "recommendation:   VIT with sigma_T = {:.3} ms  (r drops to {:.6})",
        rec.sigma_t * 1e3,
        rec.r
    );
    println!(
        "residual risk at 10^6 samples: mean {:.3}, variance {:.3}, entropy {:.3}",
        rec.mean_rate, rec.variance_rate, rec.entropy_rate
    );

    // 3. Verify by simulation at a large-but-feasible n.
    let n = 2000;
    let study = DetectionStudy {
        sample_size: n,
        train_samples: 50,
        test_samples: 30,
    };
    let schedule = ScheduleSpec::VitTruncatedNormal {
        sigma_t: rec.sigma_t,
    };
    let low = ScenarioBuilder::lab(11)
        .with_payload_rate(10.0)
        .with_schedule(schedule);
    let high = ScenarioBuilder::lab(12)
        .with_payload_rate(40.0)
        .with_schedule(schedule);
    let needed = study.piats_needed();
    let piats_low = piats_for(&low, TapPosition::SenderEgress, needed, 64).unwrap();
    let piats_high = piats_for(&high, TapPosition::SenderEgress, needed, 64).unwrap();
    let report = study
        .run(&SampleEntropy::calibrated(), &[piats_low, piats_high])
        .unwrap();
    println!(
        "\nempirical check (entropy feature, n = {n}): v = {:.3} — statistically blind",
        report.detection_rate()
    );

    // 4. What does the defence cost? Run the padded link and account.
    let mut scenario = high.build().unwrap();
    scenario.run_for_secs(60.0);
    let overhead = OverheadReport::from_handles(&scenario.gateway, Some(&scenario.receiver));
    println!("\nQoS / overhead at 40 pps payload, 60 s run:");
    println!(
        "  dummy fraction        = {:.1}%  (bandwidth expansion ×{:.2})",
        overhead.dummy_fraction * 100.0,
        overhead.bandwidth_expansion
    );
    println!(
        "  payload queue delay   = mean {:.2} ms, max {:.2} ms",
        overhead.mean_queue_delay * 1e3,
        overhead.max_queue_delay * 1e3
    );
    if let Some(e2e) = overhead.mean_end_to_end_delay {
        println!("  end-to-end delay      = mean {:.2} ms", e2e * 1e3);
    }
    println!(
        "\nconclusion: VIT buys near-perfect cover for microseconds of extra \
         jitter budget — the bandwidth cost is set by τ, not by σ_T."
    );
}
