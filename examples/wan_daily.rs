//! A compressed version of the paper's Fig. 8(b) WAN experiment: how the
//! adversary's detection rate against CIT padding varies with the time
//! of day on a 15-router Internet path.
//!
//! ```sh
//! cargo run --release --example wan_daily
//! ```

use linkpad::adversary::pipeline::DetectionStudy;
use linkpad::prelude::*;

fn main() {
    let profile = DiurnalProfile::wan();
    let n = 1000;
    let study = DetectionStudy {
        sample_size: n,
        train_samples: 50,
        test_samples: 30,
    };

    println!("Ohio → Texas (15 routers), CIT padding, entropy feature, n = {n}\n");
    println!("hour   utilization   detection");
    for hour in [2u32, 6, 10, 14, 18, 22] {
        let util = profile.utilization_at_hour(hour as f64);
        let low = ScenarioBuilder::wan(500 + hour as u64, util).with_payload_rate(10.0);
        let high = ScenarioBuilder::wan(600 + hour as u64, util).with_payload_rate(40.0);
        let needed = study.piats_needed();
        let piats_low = piats_for(&low, TapPosition::ReceiverIngress, needed, 64).unwrap();
        let piats_high = piats_for(&high, TapPosition::ReceiverIngress, needed, 64).unwrap();
        let report = study
            .run(&SampleEntropy::calibrated(), &[piats_low, piats_high])
            .unwrap();
        println!(
            "{hour:02}:00      {util:.3}        {:.3}",
            report.detection_rate()
        );
    }
    println!(
        "\nThe adversary's window is the quiet small hours: with the network \
         nearly idle, 15 routers add little cover noise and CIT's gateway \
         leak shows through — the paper's conclusion that remoteness alone \
         does not make CIT safe."
    );
}
