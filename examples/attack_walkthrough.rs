//! A step-by-step walkthrough of the adversary's procedure (paper §3.3)
//! with every intermediate quantity printed — the narrative version of
//! Fig. 2.
//!
//! ```sh
//! cargo run --release --example attack_walkthrough
//! ```

use linkpad::adversary::classifier::KdeBayes;
use linkpad::adversary::pipeline::{evaluate, features_from_piats};
use linkpad::prelude::*;
use linkpad::stats::moments::sample_variance;

fn main() {
    let n = 500;
    let train_samples = 80;
    let test_samples = 40;
    let at = TapPosition::SenderEgress;

    // ---- Off-line training (the adversary reconstructs the system) ----
    println!("STEP 1 — reconstruct the padding system and capture traffic");
    let needed = (train_samples + test_samples) * n;
    let low = ScenarioBuilder::lab(71).with_payload_rate(10.0);
    let high = ScenarioBuilder::lab(72).with_payload_rate(40.0);
    let piats_low = piats_for(&low, at, needed, 64).unwrap();
    let piats_high = piats_for(&high, at, needed, 64).unwrap();
    println!("  captured {needed} PIATs per rate class");
    println!(
        "  class variances: {:.2} µs² (10pps) vs {:.2} µs² (40pps)",
        sample_variance(&piats_low).unwrap() * 1e12,
        sample_variance(&piats_high).unwrap() * 1e12
    );

    println!("\nSTEP 2 — choose a feature statistic (sample variance, eq. 19)");
    let feature = SampleVariance;
    let split = train_samples * n;
    let train_low = features_from_piats(&feature, &piats_low[..split], n).unwrap();
    let train_high = features_from_piats(&feature, &piats_high[..split], n).unwrap();
    println!(
        "  {} training features per class (each summarizes {n} PIATs)",
        train_low.len()
    );

    println!("\nSTEP 3 — estimate class-conditional PDFs with a Gaussian KDE");
    let classifier = KdeBayes::train(&[train_low.clone(), train_high.clone()]).unwrap();
    let d = classifier.two_class_threshold().unwrap();
    println!("  Bayes decision threshold d = {d:.4e} s²");
    println!("  rule: feature ≤ d ⇒ payload is 10 pps; otherwise 40 pps");

    println!("\nSTEP 4 — run-time classification of unseen captures");
    let test_low = features_from_piats(&feature, &piats_low[split..], n).unwrap();
    let test_high = features_from_piats(&feature, &piats_high[split..], n).unwrap();
    let report = evaluate(&classifier, &[test_low, test_high]);
    println!(
        "  detection rate v = {:.3}  ({} / {} correct; per-class {:.3} / {:.3})",
        report.detection_rate(),
        report.correct,
        report.total,
        report.class_rate(0),
        report.class_rate(1)
    );

    println!("\nSTEP 5 — what the defender should take away");
    let r = CalibratedDefaults::paper().predicted_r(0.0);
    println!(
        "  Theorem 2 predicted v ≈ {:.3} at r = {r:.3}; the empirical attack agrees.",
        detection_rate_variance(r, n).unwrap()
    );
    println!(
        "  The leak is the timer's payload-correlated jitter — swap CIT for VIT\n  (see `examples/vit_design.rs`) and this whole procedure collapses to a\n  coin flip."
    );
}
